// Package rs implements Reed-Solomon error-correction codes over
// GF(2^8), the coding scheme ColorBars uses to recover symbols lost in
// the camera's inter-frame gap (paper §5).
//
// An RS(n, k) code protects k data bytes with n−k parity bytes and can
// correct up to t = (n−k)/2 byte errors at unknown positions, or up to
// n−k erasures at known positions, or any mix with
// 2·errors + erasures ≤ n−k. ColorBars exploits the erasure case: the
// packet header carries the packet size, so the receiver knows exactly
// how many symbols the inter-frame gap swallowed and where, and can
// declare those positions erased — doubling the recoverable loss
// compared to blind error correction.
//
// The decoder implements the textbook pipeline: syndrome computation,
// Berlekamp–Massey (with erasure initialization via the Forney
// variant), Chien search, and Forney's algorithm for error magnitudes.
package rs

import (
	"errors"
	"fmt"

	"colorbars/internal/gf256"
)

// ErrTooManyErrors is returned when the corruption exceeds the code's
// correction capability or decoding is otherwise inconsistent.
var ErrTooManyErrors = errors.New("rs: too many errors to correct")

// Code is an RS(n, k) code. The zero value is not usable; use New.
type Code struct {
	n, k int
	gen  []byte // generator polynomial, degree n-k
}

// New returns an RS(n, k) code over GF(2^8). n must be in (k, 255]
// and k must be positive.
func New(n, k int) (*Code, error) {
	if k <= 0 || n <= k || n > 255 {
		return nil, fmt.Errorf("rs: invalid parameters n=%d k=%d (need 0 < k < n <= 255)", n, k)
	}
	gen := []byte{1}
	for i := 0; i < n-k; i++ {
		gen = gf256.PolyMul(gen, []byte{1, gf256.Exp(i)})
	}
	return &Code{n: n, k: k, gen: gen}, nil
}

// MustNew is New, panicking on invalid parameters. For package-level
// variables and tests.
func MustNew(n, k int) *Code {
	c, err := New(n, k)
	if err != nil {
		panic(err)
	}
	return c
}

// N returns the codeword length in bytes.
func (c *Code) N() int { return c.n }

// K returns the number of data bytes per codeword.
func (c *Code) K() int { return c.k }

// ParityBytes returns n − k.
func (c *Code) ParityBytes() int { return c.n - c.k }

// CorrectableErrors returns t = (n−k)/2, the number of byte errors at
// unknown positions the code can fix.
func (c *Code) CorrectableErrors() int { return (c.n - c.k) / 2 }

// Encode appends n−k parity bytes to the k data bytes and returns the
// n-byte systematic codeword. len(data) must equal K().
func (c *Code) Encode(data []byte) ([]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("rs: data length %d, want %d", len(data), c.k)
	}
	// Systematic encoding: codeword = data·x^(n−k) + remainder.
	padded := make([]byte, c.n)
	copy(padded, data)
	_, rem := gf256.PolyDivMod(padded, c.gen)
	out := make([]byte, c.n)
	copy(out, data)
	copy(out[c.n-len(rem):], rem)
	return out, nil
}

// EncodeInto is Encode writing the codeword into dst (reallocated only
// when its capacity is short), for callers that reuse a buffer across
// blocks. Parity is computed by LFSR-style synthetic division against
// the monic generator, which is algebraically the remainder
// data·x^(n−k) mod gen — the same value Encode computes via
// PolyDivMod.
func (c *Code) EncodeInto(dst, data []byte) ([]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("rs: data length %d, want %d", len(data), c.k)
	}
	if cap(dst) < c.n {
		dst = make([]byte, c.n)
	}
	dst = dst[:c.n]
	copy(dst, data)
	rem := dst[c.k:]
	for i := range rem {
		rem[i] = 0
	}
	for i := 0; i < c.k; i++ {
		fb := data[i] ^ rem[0]
		copy(rem, rem[1:])
		rem[len(rem)-1] = 0
		if fb != 0 {
			// gen[0] is 1 (monic); gen[1:] multiplies the feedback.
			for j := range rem {
				rem[j] ^= gf256.Mul(c.gen[j+1], fb)
			}
		}
	}
	return dst, nil
}

// Decode corrects a received codeword in place and returns the k data
// bytes. erasures lists known-bad positions (0-based indexes into the
// codeword); pass nil when none are known. The codeword slice is
// modified to hold the corrected codeword.
//
// Decode runs the pipeline through a throwaway Decoder; callers on a
// hot path should hold their own Decoder (NewDecoder) to reuse its
// scratch across calls. The erasure-position order does not affect
// the result: the erasure locator is a product over positions, and
// GF(2^8) multiplication is commutative and exact.
func (c *Code) Decode(codeword []byte, erasures []int) ([]byte, error) {
	return c.NewDecoder().Decode(codeword, erasures)
}

// syndromes returns S_j = r(α^j) for j in [0, n−k).
func (c *Code) syndromes(codeword []byte) []byte {
	synd := make([]byte, c.n-c.k)
	for j := range synd {
		synd[j] = gf256.PolyEval(codeword, gf256.Exp(j))
	}
	return synd
}

// forneySyndromes multiplies the syndrome polynomial by the erasure
// locator, truncated to n−k terms. Syndromes are stored lowest order
// first (S_0 … S_{2t−1}).
func (c *Code) forneySyndromes(synd, gamma []byte) []byte {
	out := make([]byte, len(synd))
	for j := range out {
		var s byte
		for i := 0; i < len(gamma) && i <= j; i++ {
			s ^= gf256.Mul(gamma[i], synd[j-i])
		}
		out[j] = s
	}
	return out
}

// berlekampMassey finds the error-locator polynomial (lowest degree
// first: σ(x) = 1 + σ1·x + …) from the (modified) syndromes. numEras
// erasures have already been accounted for; the number of additional
// errors ν must satisfy 2ν + numEras ≤ 2t.
func berlekampMassey(synd []byte, numEras, twoT int) ([]byte, error) {
	sigma := []byte{1}
	prev := []byte{1}
	var l int
	var m = 1
	var b byte = 1
	for i := 0; i < twoT-numEras; i++ {
		n := i + numEras
		// Discrepancy δ = S_n + Σ σ_j · S_{n−j}.
		delta := synd[n]
		for j := 1; j <= l && j < len(sigma); j++ {
			delta ^= gf256.Mul(sigma[j], synd[n-j])
		}
		if delta == 0 {
			m++
			continue
		}
		if 2*l <= i {
			tmp := append([]byte(nil), sigma...)
			coef := gf256.Div(delta, b)
			sigma = polySubShifted(sigma, prev, coef, m)
			prev = tmp
			l = i + 1 - l
			b = delta
			m = 1
		} else {
			coef := gf256.Div(delta, b)
			sigma = polySubShifted(sigma, prev, coef, m)
			m++
		}
	}
	// Degree check: locator degree must equal l and fit capability.
	deg := len(sigma) - 1
	for deg > 0 && sigma[deg] == 0 {
		deg--
	}
	if 2*deg+numEras > twoT {
		return nil, ErrTooManyErrors
	}
	return sigma[:deg+1], nil
}

// polySubShifted returns sigma − coef·x^shift·prev with lowest-first
// ordering (subtraction is XOR).
func polySubShifted(sigma, prev []byte, coef byte, shift int) []byte {
	out := make([]byte, max(len(sigma), len(prev)+shift))
	copy(out, sigma)
	for i, c := range prev {
		out[i+shift] ^= gf256.Mul(c, coef)
	}
	return out
}

// chienSearch finds codeword positions whose locator roots match.
// loc is lowest-degree-first. Returns positions sorted ascending.
func (c *Code) chienSearch(loc []byte) ([]int, error) {
	deg := len(loc) - 1
	for deg > 0 && loc[deg] == 0 {
		deg--
	}
	loc = loc[:deg+1]
	var positions []int
	for i := 0; i < c.n; i++ {
		// Position i has locator X_i = α^(n−1−i); it is an error
		// position iff σ(X_i^{-1}) == 0.
		xInv := gf256.Exp(-(c.n - 1 - i))
		var v byte
		for j := deg; j >= 0; j-- {
			v = gf256.Mul(v, xInv) ^ loc[j]
		}
		if v == 0 {
			positions = append(positions, i)
		}
	}
	if len(positions) != deg {
		return nil, ErrTooManyErrors
	}
	return positions, nil
}

// forneyCorrect computes error magnitudes with Forney's algorithm and
// repairs the codeword in place.
func (c *Code) forneyCorrect(codeword, synd, loc []byte, positions []int) error {
	// Error evaluator Ω(x) = S(x)·σ(x) mod x^(2t), lowest-first.
	twoT := c.n - c.k
	omega := make([]byte, twoT)
	for i := 0; i < twoT; i++ {
		var s byte
		for j := 0; j < len(loc) && j <= i; j++ {
			s ^= gf256.Mul(loc[j], synd[i-j])
		}
		omega[i] = s
	}
	// Formal derivative σ'(x): odd-power coefficients shifted down.
	deriv := make([]byte, 0, len(loc)/2)
	for i := 1; i < len(loc); i += 2 {
		deriv = append(deriv, loc[i])
	}
	for _, pos := range positions {
		x := gf256.Exp(c.n - 1 - pos)
		xInv := gf256.Inv(x)
		// Ω(X^{-1})
		var num byte
		for i := len(omega) - 1; i >= 0; i-- {
			num = gf256.Mul(num, xInv) ^ omega[i]
		}
		// σ'(X^{-1}) — derivative has only even powers of xInv left:
		// σ'(x) evaluated at xInv over the compacted coefficients uses
		// xInv^2 steps.
		x2 := gf256.Mul(xInv, xInv)
		var den byte
		for i := len(deriv) - 1; i >= 0; i-- {
			den = gf256.Mul(den, x2) ^ deriv[i]
		}
		if den == 0 {
			return ErrTooManyErrors
		}
		mag := gf256.Mul(num, gf256.Inv(den))
		// Forney: e = X·Ω(X^{-1})/σ'(X^{-1}) for the b=0 syndrome
		// convention (first consecutive root α^0).
		mag = gf256.Mul(mag, x)
		codeword[pos] ^= mag
	}
	return nil
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
