package rs

import (
	"bytes"
	"testing"
)

// FuzzRSDecode feeds the decoder arbitrary codewords and erasure
// lists over fuzz-chosen (n, k) geometries. Decode must never panic:
// malformed erasure indexes (negative, duplicate, out of range) and
// unsatisfiable syndromes must come back as errors. When Decode does
// claim success, the result must be a k-byte message whose
// re-encoding reproduces the corrected codeword — success is
// verifiable, not just plausible.
func FuzzRSDecode(f *testing.F) {
	f.Add([]byte{40, 20})
	f.Add([]byte{255, 128, 1, 2, 3, 4, 5})
	f.Add([]byte{10, 4, 0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0, 0, 0, 1, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := 2 + int(data[0])%254 // [2, 255]
		k := 1 + int(data[1])%(n-1)
		c, err := New(n, k)
		if err != nil {
			t.Fatalf("New(%d, %d): %v", n, k, err)
		}
		rest := data[2:]
		codeword := make([]byte, n)
		copy(codeword, rest)
		var erasures []int
		if len(rest) > n {
			for _, e := range rest[n:] {
				// Deliberately unvalidated: indexes may repeat or fall
				// outside [0, n) — Decode must reject, not crash.
				erasures = append(erasures, int(e)-4)
			}
		}
		msg, err := c.Decode(append([]byte(nil), codeword...), erasures)
		if err != nil {
			return
		}
		if len(msg) != k {
			t.Fatalf("Decode returned %d bytes, want k=%d", len(msg), k)
		}
		recoded, err := c.Encode(append([]byte(nil), msg...))
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(recoded[:k], msg) {
			t.Errorf("systematic prefix mismatch")
		}
	})
}
