package rs

import (
	"fmt"

	"colorbars/internal/gf256"
)

// Decoder is a scratch-carrying decoder for one Code: every working
// polynomial the decode pipeline needs (syndromes, locators, the
// error evaluator) lives in reusable buffers, so steady-state Decode
// calls perform no heap allocation. A Decoder is not safe for
// concurrent use; create one per goroutine (they are cheap).
//
// Code.Decode delegates here through a throwaway Decoder, so both
// entry points run the same pipeline and produce identical results:
// every step is exact GF(2^8) arithmetic, independent of buffer
// reuse.
type Decoder struct {
	c *Code

	synd, verify     []byte
	gamma            []byte
	fsynd            []byte
	sigma, prev, tmp []byte
	loc              []byte
	omega, deriv     []byte
	positions        []int
}

// NewDecoder returns a decoder with scratch sized for the code.
func (c *Code) NewDecoder() *Decoder {
	twoT := c.n - c.k
	return &Decoder{
		c:         c,
		synd:      make([]byte, twoT),
		verify:    make([]byte, twoT),
		gamma:     make([]byte, 0, twoT+1),
		fsynd:     make([]byte, twoT),
		sigma:     make([]byte, 0, twoT+2),
		prev:      make([]byte, 0, twoT+2),
		tmp:       make([]byte, 0, twoT+2),
		loc:       make([]byte, 0, 2*twoT+2),
		omega:     make([]byte, twoT),
		deriv:     make([]byte, 0, twoT+1),
		positions: make([]int, 0, twoT),
	}
}

// Decode corrects a received codeword in place and returns the k data
// bytes (a prefix of the codeword slice). Semantics match Code.Decode
// exactly; see there for the erasure contract.
func (d *Decoder) Decode(codeword []byte, erasures []int) ([]byte, error) {
	c := d.c
	if len(codeword) != c.n {
		return nil, fmt.Errorf("rs: codeword length %d, want %d", len(codeword), c.n)
	}
	for _, e := range erasures {
		if e < 0 || e >= c.n {
			return nil, fmt.Errorf("rs: erasure position %d out of range [0,%d)", e, c.n)
		}
	}
	if len(erasures) > c.n-c.k {
		return nil, ErrTooManyErrors
	}

	syndromesInto(d.synd, codeword)
	if allZero(d.synd) {
		return codeword[:c.k], nil
	}

	// Erasure locator Γ(x) = Π (1 + X_i·x), built by in-place binomial
	// multiplication (descending index keeps each step reading
	// pre-update coefficients) — the same convolution PolyMul computes.
	g := append(d.gamma[:0], 1)
	for _, pos := range erasures {
		x := gf256.Exp(c.n - 1 - pos)
		g = append(g, 0)
		for i := len(g) - 1; i >= 1; i-- {
			g[i] ^= gf256.Mul(g[i-1], x)
		}
	}
	d.gamma = g

	// Modified (Forney) syndromes: Ξ(x) = Γ(x)·S(x) mod x^(n−k).
	for j := range d.fsynd {
		var s byte
		for i := 0; i < len(g) && i <= j; i++ {
			s ^= gf256.Mul(g[i], d.synd[j-i])
		}
		d.fsynd[j] = s
	}

	errLoc, err := d.berlekampMassey(d.fsynd, len(erasures), c.n-c.k)
	if err != nil {
		return nil, err
	}

	// Combined locator loc = Γ·σ (plain convolution into scratch).
	loc := d.loc[:0]
	for i := 0; i < len(g)+len(errLoc)-1; i++ {
		var s byte
		for j := 0; j < len(g) && j <= i; j++ {
			if i-j < len(errLoc) {
				s ^= gf256.Mul(g[j], errLoc[i-j])
			}
		}
		loc = append(loc, s)
	}
	d.loc = loc

	positions, err := d.chienSearch(loc)
	if err != nil {
		return nil, err
	}
	if err := d.forneyCorrect(codeword, d.synd, loc, positions); err != nil {
		return nil, err
	}
	// Re-verify: a miscorrection leaves nonzero syndromes.
	syndromesInto(d.verify, codeword)
	if !allZero(d.verify) {
		return nil, ErrTooManyErrors
	}
	return codeword[:c.k], nil
}

// syndromesInto fills synd with S_j = r(α^j).
func syndromesInto(synd, codeword []byte) {
	for j := range synd {
		synd[j] = gf256.PolyEval(codeword, gf256.Exp(j))
	}
}

// berlekampMassey mirrors the package-level pipeline on the decoder's
// scratch buffers: polynomial updates write in place (with a swap for
// the length-change case) instead of allocating.
func (d *Decoder) berlekampMassey(synd []byte, numEras, twoT int) ([]byte, error) {
	sigma := append(d.sigma[:0], 1)
	prev := append(d.prev[:0], 1)
	tmp := d.tmp[:0]
	var l int
	var m = 1
	var b byte = 1
	for i := 0; i < twoT-numEras; i++ {
		n := i + numEras
		delta := synd[n]
		for j := 1; j <= l && j < len(sigma); j++ {
			delta ^= gf256.Mul(sigma[j], synd[n-j])
		}
		if delta == 0 {
			m++
			continue
		}
		coef := gf256.Div(delta, b)
		if 2*l <= i {
			tmp = append(tmp[:0], sigma...)
			sigma = subShiftedInPlace(sigma, prev, coef, m)
			prev, tmp = tmp, prev
			l = i + 1 - l
			b = delta
			m = 1
		} else {
			sigma = subShiftedInPlace(sigma, prev, coef, m)
			m++
		}
	}
	d.sigma, d.prev, d.tmp = sigma, prev, tmp
	deg := len(sigma) - 1
	for deg > 0 && sigma[deg] == 0 {
		deg--
	}
	if 2*deg+numEras > twoT {
		return nil, ErrTooManyErrors
	}
	return sigma[:deg+1], nil
}

// subShiftedInPlace computes sigma ^= coef·x^shift·prev, extending
// sigma with zeros as needed. sigma and prev must not alias.
func subShiftedInPlace(sigma, prev []byte, coef byte, shift int) []byte {
	for len(sigma) < len(prev)+shift {
		sigma = append(sigma, 0)
	}
	for i, c := range prev {
		sigma[i+shift] ^= gf256.Mul(c, coef)
	}
	return sigma
}

// chienSearch is Code.chienSearch writing positions into scratch.
func (d *Decoder) chienSearch(loc []byte) ([]int, error) {
	c := d.c
	deg := len(loc) - 1
	for deg > 0 && loc[deg] == 0 {
		deg--
	}
	loc = loc[:deg+1]
	positions := d.positions[:0]
	for i := 0; i < c.n; i++ {
		xInv := gf256.Exp(-(c.n - 1 - i))
		var v byte
		for j := deg; j >= 0; j-- {
			v = gf256.Mul(v, xInv) ^ loc[j]
		}
		if v == 0 {
			positions = append(positions, i)
		}
	}
	d.positions = positions
	if len(positions) != deg {
		return nil, ErrTooManyErrors
	}
	return positions, nil
}

// forneyCorrect is Code.forneyCorrect on scratch buffers.
func (d *Decoder) forneyCorrect(codeword, synd, loc []byte, positions []int) error {
	c := d.c
	twoT := c.n - c.k
	omega := d.omega[:twoT]
	for i := 0; i < twoT; i++ {
		var s byte
		for j := 0; j < len(loc) && j <= i; j++ {
			s ^= gf256.Mul(loc[j], synd[i-j])
		}
		omega[i] = s
	}
	deriv := d.deriv[:0]
	for i := 1; i < len(loc); i += 2 {
		deriv = append(deriv, loc[i])
	}
	d.deriv = deriv
	for _, pos := range positions {
		x := gf256.Exp(c.n - 1 - pos)
		xInv := gf256.Inv(x)
		var num byte
		for i := len(omega) - 1; i >= 0; i-- {
			num = gf256.Mul(num, xInv) ^ omega[i]
		}
		x2 := gf256.Mul(xInv, xInv)
		var den byte
		for i := len(deriv) - 1; i >= 0; i-- {
			den = gf256.Mul(den, x2) ^ deriv[i]
		}
		if den == 0 {
			return ErrTooManyErrors
		}
		mag := gf256.Mul(num, gf256.Inv(den))
		mag = gf256.Mul(mag, x)
		codeword[pos] ^= mag
	}
	return nil
}
