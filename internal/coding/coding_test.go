package coding

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"colorbars/internal/csk"
	"colorbars/internal/rs"
)

func nexusParams() Params {
	return Params{
		SymbolRate:   3000,
		FrameRate:    30,
		LossRatio:    0.2312,
		Order:        csk.CSK8,
		DataFraction: 0.8,
	}
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		mutate func(*Params)
		ok     bool
	}{
		{func(p *Params) {}, true},
		{func(p *Params) { p.SymbolRate = 0 }, false},
		{func(p *Params) { p.FrameRate = -1 }, false},
		{func(p *Params) { p.LossRatio = 1 }, false},
		{func(p *Params) { p.LossRatio = -0.1 }, false},
		{func(p *Params) { p.Order = csk.Order(7) }, false},
		{func(p *Params) { p.DataFraction = 0 }, false},
		{func(p *Params) { p.DataFraction = 1.2 }, false},
	}
	for i, tc := range cases {
		p := nexusParams()
		tc.mutate(&p)
		if err := p.Validate(); (err == nil) != tc.ok {
			t.Errorf("case %d: err=%v want ok=%v", i, err, tc.ok)
		}
	}
}

func TestSymbolRates(t *testing.T) {
	p := nexusParams()
	fs := p.SymbolsPerFrame()
	ls := p.SymbolsPerGap()
	if math.Abs(fs+ls-p.SymbolRate/p.FrameRate) > 1e-9 {
		t.Errorf("F_S + L_S = %v, want S/F = %v", fs+ls, p.SymbolRate/p.FrameRate)
	}
	if math.Abs(ls/(fs+ls)-p.LossRatio) > 1e-9 {
		t.Errorf("loss ratio from splits = %v", ls/(fs+ls))
	}
}

func TestPaperWorkedExample(t *testing.T) {
	// §5: 150 bands/frame, 30 lost, 8-CSK, α_S = 4/5 → 36-byte message.
	p := Params{
		SymbolRate:   180 * 30, // F_S + L_S = 180 per frame at 30 fps
		FrameRate:    30,
		LossRatio:    30.0 / 180.0,
		Order:        csk.CSK8,
		DataFraction: 0.8,
	}
	n, k, err := p.CodewordBytes()
	if err != nil {
		t.Fatal(err)
	}
	if k != 36 {
		t.Errorf("k = %d bytes, want 36 (paper example)", k)
	}
	if n != 54 { // α_S·C·(F_S+L_S)/8 = 0.8·3·180/8
		t.Errorf("n = %d bytes, want 54", n)
	}
}

func TestCodewordBytesParityEven(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := Params{
			SymbolRate:   500 + r.Float64()*3500,
			FrameRate:    30,
			LossRatio:    r.Float64() * 0.5,
			Order:        csk.Orders[r.Intn(4)],
			DataFraction: 0.5 + r.Float64()*0.5,
		}
		n, k, err := p.CodewordBytes()
		if err != nil {
			return true // some corners are legitimately infeasible
		}
		return (n-k)%2 == 0 && n <= 255 && k >= 1 && n > k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCodewordRecoverabilityInvariant(t *testing.T) {
	// The defining property of the sizing rule: one gap's worth of
	// data bytes must be recoverable as erasures (and half that as
	// blind errors).
	p := nexusParams()
	n, k, err := p.CodewordBytes()
	if err != nil {
		t.Fatal(err)
	}
	lostBytes := int(p.DataFraction * float64(p.Order.BitsPerSymbol()) * p.SymbolsPerGap() / 8)
	if n-k < lostBytes {
		t.Errorf("parity %d bytes < gap loss %d bytes", n-k, lostBytes)
	}
}

func TestNewCode(t *testing.T) {
	code, err := nexusParams().NewCode()
	if err != nil {
		t.Fatal(err)
	}
	if code.N() > 255 || code.K() < 1 {
		t.Errorf("bad code %d/%d", code.N(), code.K())
	}
}

func TestHighRateCapsAt255(t *testing.T) {
	p := nexusParams()
	p.SymbolRate = 4000
	p.Order = csk.CSK32
	n, _, err := p.CodewordBytes()
	if err != nil {
		t.Fatal(err)
	}
	if n > 255 {
		t.Errorf("n = %d exceeds GF(256)", n)
	}
}

func TestBlockerRoundTrip(t *testing.T) {
	code := rs.MustNew(40, 24)
	b := NewBlocker(code)
	f := func(msg []byte) bool {
		if len(msg) == 0 {
			return true
		}
		cws, err := b.Encode(msg)
		if err != nil {
			return false
		}
		if len(cws) != b.NumBlocks(len(msg)) {
			return false
		}
		got, err := b.Decode(cws, nil, len(msg))
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBlockerWithErasures(t *testing.T) {
	code := rs.MustNew(40, 24) // 16 parity → up to 16 erasures/block
	b := NewBlocker(code)
	msg := make([]byte, 100)
	rand.New(rand.NewSource(1)).Read(msg)
	cws, err := b.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	eras := make([][]int, len(cws))
	rng := rand.New(rand.NewSource(2))
	for i := range cws {
		positions := rng.Perm(40)[:10]
		for _, pos := range positions {
			cws[i][pos] = 0
		}
		eras[i] = positions
	}
	got, err := b.Decode(cws, eras, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Error("erasure recovery failed")
	}
}

func TestBlockerErrors(t *testing.T) {
	b := NewBlocker(rs.MustNew(10, 6))
	if _, err := b.Encode(nil); err == nil {
		t.Error("expected empty-message error")
	}
	cws, _ := b.Encode([]byte{1, 2, 3})
	if _, err := b.Decode(cws, [][]int{{0}, {1}}, 3); err == nil {
		t.Error("expected erasure-list-count error")
	}
	if _, err := b.Decode(cws, nil, 100); err == nil {
		t.Error("expected message-length error")
	}
	// Uncorrectable corruption must surface an error.
	for i := 0; i < 9; i++ {
		cws[0][i] ^= 0xff
	}
	if _, err := b.Decode(cws, nil, 3); err == nil {
		t.Error("expected decode failure")
	}
}

func TestBlockerCode(t *testing.T) {
	code := rs.MustNew(12, 8)
	if NewBlocker(code).Code() != code {
		t.Error("Code() accessor broken")
	}
}
