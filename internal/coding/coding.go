// Package coding implements ColorBars' error-correction sizing rules
// (paper §5): it derives the RS(n, k) parameters from the receiver's
// measured inter-frame loss and the link's modulation parameters, and
// splits byte streams into codeword-sized blocks.
//
// With a symbol rate S (sym/s), a frame rate F (frames/s), an
// inter-frame loss ratio l, a data fraction α_S (data symbols over
// data-plus-white symbols) and C bits per symbol:
//
//	F_S = (1 − l)·S/F   symbols received per frame
//	L_S = l·S/F         symbols lost per gap
//	n   = α_S·C·(F_S + L_S) bits → /8 bytes
//	k   = α_S·C·(F_S − L_S) bits → /8 bytes
//
// so the 2t = n − k parity bytes cover exactly one gap's worth of data
// bits as unknown-position errors — or twice that as erasures, which
// the ColorBars receiver exploits because the packet header tells it
// where the gap fell.
package coding

import (
	"fmt"

	"colorbars/internal/csk"
	"colorbars/internal/packet"
	"colorbars/internal/rs"
)

// Params captures the link quantities the RS sizing depends on.
type Params struct {
	// SymbolRate is the LED's symbol frequency S in symbols/second.
	SymbolRate float64
	// FrameRate is the receiver's frame rate F in frames/second.
	FrameRate float64
	// LossRatio is the receiver's inter-frame loss ratio l in [0, 1).
	LossRatio float64
	// Order is the CSK constellation order (determines C).
	Order csk.Order
	// DataFraction is α_S: the fraction of payload slots carrying data
	// (the remainder are white illumination symbols).
	DataFraction float64
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.SymbolRate <= 0 {
		return fmt.Errorf("coding: symbol rate %v", p.SymbolRate)
	}
	if p.FrameRate <= 0 {
		return fmt.Errorf("coding: frame rate %v", p.FrameRate)
	}
	if p.LossRatio < 0 || p.LossRatio >= 1 {
		return fmt.Errorf("coding: loss ratio %v outside [0, 1)", p.LossRatio)
	}
	if !p.Order.Valid() {
		return fmt.Errorf("coding: invalid order %d", int(p.Order))
	}
	if p.DataFraction <= 0 || p.DataFraction > 1 {
		return fmt.Errorf("coding: data fraction %v outside (0, 1]", p.DataFraction)
	}
	return nil
}

// SymbolsPerFrame returns F_S, the data symbols received per frame.
func (p Params) SymbolsPerFrame() float64 {
	return (1 - p.LossRatio) * p.SymbolRate / p.FrameRate
}

// SymbolsPerGap returns L_S, the symbols lost per inter-frame gap.
func (p Params) SymbolsPerGap() float64 {
	return p.LossRatio * p.SymbolRate / p.FrameRate
}

// CodewordBytes returns the paper's (n, k) in bytes. Both are floored
// to whole bytes and adjusted so that n − k is even (RS error
// correction capability t = (n−k)/2 must be integral) and n ≤ 255
// (GF(256) limit); k is reduced if needed to keep at least one data
// byte and enough parity.
func (p Params) CodewordBytes() (n, k int, err error) {
	if err := p.Validate(); err != nil {
		return 0, 0, err
	}
	c := float64(p.Order.BitsPerSymbol())
	fs := p.SymbolsPerFrame()
	ls := p.SymbolsPerGap()
	nBits := p.DataFraction * c * (fs + ls)
	kBits := p.DataFraction * c * (fs - ls)
	n = int(nBits / 8)
	k = int(kBits / 8)
	if n > 255 {
		// Scale down proportionally to the GF(256) limit.
		k = k * 255 / n
		n = 255
	}
	if k < 1 {
		k = 1
	}
	if k >= n {
		k = n - 2
	}
	if k < 1 || n < 3 {
		return 0, 0, fmt.Errorf("coding: link too lossy for RS sizing (n=%d, k=%d)", n, k)
	}
	// Make parity even.
	if (n-k)%2 != 0 {
		k--
	}
	if k < 1 {
		return 0, 0, fmt.Errorf("coding: link too lossy for RS sizing (n=%d, k=%d)", n, k)
	}
	return n, k, nil
}

// NewCode builds the RS code for the parameters.
func (p Params) NewCode() (*rs.Code, error) {
	n, k, err := p.CodewordBytes()
	if err != nil {
		return nil, err
	}
	return rs.New(n, k)
}

// LinkCode sizes the RS code so that one complete framed packet —
// delimiter, flag, size field, and payload slots including the white
// illumination symbols — occupies one frame-plus-gap period (the
// paper's "natural choice" of packet size, §5). This is what real
// links must use: CodewordBytes implements the paper's formula
// literally, which counts only payload bits and therefore overflows
// the frame budget once framing overhead is added.
func (p Params) LinkCode() (*rs.Code, error) {
	n, err := p.packetCodewordBytes(16)
	if err != nil {
		return nil, err
	}
	// k/n follows the paper's ratio (F_S − L_S)/(F_S + L_S) = 1 − 2l,
	// so one gap's worth of data is recoverable as unknown-position
	// errors.
	ratio := 1 - 2*p.LossRatio
	k := int(float64(n) * ratio)
	if k < 2 {
		// Very lossy or very short packets: keep at least two data
		// bytes and rely on erasure decoding, which recovers up to
		// n−k erased bytes — twice the blind-error capability the
		// paper's ratio provisions for.
		k = 2
	}
	if k > n-2 {
		k = n - 2
	}
	// Make parity even, preferring to grow k (shrinking parity by one)
	// so short codes keep at least the minimum data bytes.
	if (n-k)%2 != 0 {
		if k+1 <= n-2 {
			k++
		} else {
			k--
		}
	}
	if k < 1 || n < 4 {
		return nil, fmt.Errorf("coding: link too lossy for packet-sized RS code (n=%d, k=%d)", n, k)
	}
	return rs.New(n, k)
}

// packetCodewordBytes finds the codeword size n (bytes) for packets
// spanning whole frame periods, preferring the fewest periods whose
// codeword reaches minN bytes. At low symbol rates one frame+gap holds
// too few symbols for a useful code once the header is paid; each
// extra period adds one more inter-frame gap per packet, which the
// receiver handles by searching the loss split
// (packet.MaxGapsPerPacket bounds it).
func (p Params) packetCodewordBytes(minN int) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	// Header: delimiter+flag plus the white-separated size field
	// (nSize data symbols interleaved with nSize separator whites).
	header := float64(len(packet.DataPrefix()) + 2*packet.SizeSymbols(p.Order))
	whiteFraction := 1 - p.DataFraction
	c := p.Order.BitsPerSymbol()
	var n, dataSyms int
	framePeriods := 0
	for periods := 1; periods <= packet.MaxGapsPerPacket; periods++ {
		budget := float64(periods) * p.SymbolRate / p.FrameRate
		slotBudget := int(budget - header)
		if slotBudget < 4 {
			continue
		}
		dataSyms = packet.DataSlots(slotBudget, whiteFraction)
		n = dataSyms * c / 8
		framePeriods = periods
		if n >= minN {
			break
		}
	}
	if framePeriods == 0 || n < 4 {
		return 0, fmt.Errorf("coding: symbol rate %v cannot fit a packet (header %v symbols)", p.SymbolRate, header)
	}
	if n > 255 {
		n = 255
	}
	return n, nil
}

// LinkCodeErasure sizes the RS code like LinkCode but provisions
// parity for one gap's worth of loss as *erasures* rather than
// unknown-position errors: the ColorBars receiver learns the loss
// positions from the packet header, and erasure decoding recovers
// n−k erased bytes instead of (n−k)/2 errors. The code rate improves
// from 1−2l to roughly 1−l, with a small extra margin for stray
// demodulation errors. Compare the two sizings with the erasure
// ablation bench.
func (p Params) LinkCodeErasure() (*rs.Code, error) {
	// Prefer codewords of at least 32 bytes so the margins below leave
	// useful data capacity; low symbol rates span several frame
	// periods (each adds a gap the receiver must search).
	n, err := p.packetCodewordBytes(32)
	if err != nil {
		return nil, err
	}
	// errorMargin covers what the pure-erasure budget misses: lost
	// symbol runs erase one extra byte at each boundary they straddle,
	// partial symbols at the frame edges add a couple more erased
	// slots, speculative multi-gap decode attempts reserve 4 bytes of
	// verification slack, and stray demodulation errors cost two
	// parity bytes each (the n/12 term).
	errorMargin := 8 + n/12
	k := int(float64(n)*(1-p.LossRatio)) - errorMargin
	if k < 2 {
		k = 2
	}
	if k > n-2 {
		k = n - 2
	}
	if (n-k)%2 != 0 {
		if k+1 <= n-2 {
			k++
		} else {
			k--
		}
	}
	if k < 1 {
		return nil, fmt.Errorf("coding: link too lossy for erasure-sized RS code (n=%d)", n)
	}
	return rs.New(n, k)
}

// Blocker splits a byte stream into k-byte blocks (zero-padding the
// final block) and encodes each into an n-byte codeword, and joins
// decoded blocks back together.
type Blocker struct {
	code *rs.Code
}

// NewBlocker wraps an RS code for stream blocking.
func NewBlocker(code *rs.Code) *Blocker { return &Blocker{code: code} }

// Code returns the underlying RS code.
func (b *Blocker) Code() *rs.Code { return b.code }

// NumBlocks returns how many codewords carry a message of msgLen
// bytes.
func (b *Blocker) NumBlocks(msgLen int) int {
	k := b.code.K()
	return (msgLen + k - 1) / k
}

// Encode splits msg into blocks and RS-encodes each. The final block
// is zero-padded; callers carry the true message length out of band
// (ColorBars applications frame their own content).
func (b *Blocker) Encode(msg []byte) ([][]byte, error) {
	if len(msg) == 0 {
		return nil, fmt.Errorf("coding: empty message")
	}
	k := b.code.K()
	blocks := make([][]byte, 0, b.NumBlocks(len(msg)))
	for off := 0; off < len(msg); off += k {
		end := off + k
		block := make([]byte, k)
		if end > len(msg) {
			copy(block, msg[off:])
		} else {
			copy(block, msg[off:end])
		}
		cw, err := b.code.Encode(block)
		if err != nil {
			return nil, err
		}
		blocks = append(blocks, cw)
	}
	return blocks, nil
}

// Decode RS-decodes each codeword (with optional per-block erasures)
// and concatenates the data, trimming to msgLen bytes.
func (b *Blocker) Decode(codewords [][]byte, erasures [][]int, msgLen int) ([]byte, error) {
	if erasures != nil && len(erasures) != len(codewords) {
		return nil, fmt.Errorf("coding: %d erasure lists for %d codewords", len(erasures), len(codewords))
	}
	out := make([]byte, 0, len(codewords)*b.code.K())
	for i, cw := range codewords {
		var eras []int
		if erasures != nil {
			eras = erasures[i]
		}
		buf := append([]byte(nil), cw...)
		data, err := b.code.Decode(buf, eras)
		if err != nil {
			return nil, fmt.Errorf("coding: block %d: %w", i, err)
		}
		out = append(out, data...)
	}
	if msgLen > len(out) {
		return nil, fmt.Errorf("coding: message length %d exceeds decoded %d", msgLen, len(out))
	}
	return out[:msgLen], nil
}
