package coding

import (
	"testing"

	"colorbars/internal/csk"
)

func TestLinkCodeErasureHigherRate(t *testing.T) {
	// Erasure-aware sizing must yield a strictly higher code rate than
	// the paper's blind-error rule where it matters most: at high loss
	// ratios, where the paper's rule spends almost half the codeword
	// on parity. (At low loss the safety margin can absorb the
	// difference.)
	p := Params{
		SymbolRate:   4000,
		FrameRate:    30,
		LossRatio:    0.3727,
		Order:        csk.CSK16,
		DataFraction: 0.8,
	}
	paper, err := p.LinkCode()
	if err != nil {
		t.Fatal(err)
	}
	erasure, err := p.LinkCodeErasure()
	if err != nil {
		t.Fatal(err)
	}
	paperRate := float64(paper.K()) / float64(paper.N())
	erasureRate := float64(erasure.K()) / float64(erasure.N())
	if erasureRate <= paperRate {
		t.Errorf("erasure rate %.3f not above paper rate %.3f", erasureRate, paperRate)
	}
}

func TestLinkCodeErasureParityCoversGap(t *testing.T) {
	// Parity must cover at least one gap's worth of erased data bytes
	// with margin for the byte-boundary and edge-fragment inflation.
	for _, loss := range []float64{0.1, 0.2312, 0.3727} {
		for _, order := range csk.Orders {
			p := Params{
				SymbolRate:   3000,
				FrameRate:    30,
				LossRatio:    loss,
				Order:        order,
				DataFraction: 0.8,
			}
			code, err := p.LinkCodeErasure()
			if err != nil {
				t.Fatalf("loss=%v %v: %v", loss, order, err)
			}
			needed := int(float64(code.N()) * loss)
			if code.ParityBytes() < needed+4 {
				t.Errorf("loss=%v %v: parity %d below gap need %d + margin",
					loss, order, code.ParityBytes(), needed)
			}
		}
	}
}

func TestLinkCodeMultiPeriodAtLowRates(t *testing.T) {
	// At 1 kHz a single frame period cannot fit a useful codeword;
	// packets must span several periods (bounded by the deframer's gap
	// limit) and still produce a valid code.
	p := Params{
		SymbolRate:   1000,
		FrameRate:    30,
		LossRatio:    0.2312,
		Order:        csk.CSK16,
		DataFraction: 0.8,
	}
	code, err := p.LinkCode()
	if err != nil {
		t.Fatal(err)
	}
	// One frame+gap at 1 kHz is 33 symbols ≈ 16 bytes of 16-CSK before
	// the header; a single-period code could not reach this size.
	if code.N() < 16 {
		t.Errorf("multi-period sizing too small: n=%d", code.N())
	}
}

func TestLinkCodesDeterministic(t *testing.T) {
	p := Params{
		SymbolRate: 2000, FrameRate: 30, LossRatio: 0.3,
		Order: csk.CSK8, DataFraction: 0.75,
	}
	a, err := p.LinkCodeErasure()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.LinkCodeErasure()
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != b.N() || a.K() != b.K() {
		t.Errorf("nondeterministic sizing: %d/%d vs %d/%d", a.N(), a.K(), b.N(), b.K())
	}
}

func TestLinkCodeErasureRejectsInvalid(t *testing.T) {
	p := Params{
		SymbolRate: 0, FrameRate: 30, LossRatio: 0.3,
		Order: csk.CSK8, DataFraction: 0.75,
	}
	if _, err := p.LinkCodeErasure(); err == nil {
		t.Error("invalid params accepted")
	}
}
