package pipeline

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"colorbars/internal/csk"
	"colorbars/internal/telemetry"
)

// TestDrainCancelledContextPrompt is the regression test for Drain
// with an already-cancelled context: it must return ctx.Err()
// promptly, not flush the remaining output first (the two select arms
// are both ready, and Go picks randomly).
func TestDrainCancelledContextPrompt(t *testing.T) {
	sess := newSession(t, csk.CSK8, 2000, 1, 2)
	// Queue deep enough for the whole session, so the lane wedges on
	// its tiny undrained output buffer rather than dropping frames.
	p := New(Config{Workers: 2, QueueDepth: len(sess.frames) + 1, OutputDepth: 2})
	s, err := p.AddStream("a", sess.newRx(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range sess.frames {
		if err := s.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	// Let the lane fill its undrained output buffer, so a flushing
	// Drain would have blocks to consume.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.out) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no blocks produced to fill the output buffer")
		}
		time.Sleep(time.Millisecond)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	watchdog(t, 2*time.Second, "Drain with cancelled context", func() {
		if err := s.Drain(cancelled); !errors.Is(err, context.Canceled) {
			t.Errorf("Drain = %v, want context.Canceled", err)
		}
	})
	if len(s.out) == 0 {
		t.Error("Drain consumed the pending output despite the cancelled context")
	}
	p.Abort()
}

// TestCloseCancelledContextPrompt: Pipeline.Close with an
// already-cancelled context must abort hard and return ctx.Err()
// without waiting for a graceful flush.
func TestCloseCancelledContextPrompt(t *testing.T) {
	sess := newSession(t, csk.CSK8, 2000, 2, 2)
	p := New(Config{Workers: 2, OutputDepth: 1, Overload: DropOldest})
	s, err := p.AddStream("a", sess.newRx(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range sess.frames {
		if err := s.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	watchdog(t, 2*time.Second, "Close with cancelled context", func() {
		if err := p.Close(cancelled); !errors.Is(err, context.Canceled) {
			t.Errorf("Close = %v, want context.Canceled", err)
		}
	})
	if err := s.Submit(context.Background(), sess.frames[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after aborted Close = %v, want ErrClosed", err)
	}
}

// TestWatchdogRecyclesStalledStream wedges one stream (its consumer
// never drains Blocks) and checks the watchdog recycles it — lane
// goroutines exit, Blocks closes, the counter fires — while a healthy
// sibling stream on the same pool still decodes byte-identically to
// the serial reference.
func TestWatchdogRecyclesStalledStream(t *testing.T) {
	// 4 s of capture yields ~5 mid-stream blocks: plenty to wedge a
	// depth-1 output buffer. The timeout sits far above one frame's
	// Analyze latency (even under -race) so the drained sibling can
	// never look stalled.
	sess := newSession(t, csk.CSK8, 2000, 3, 4)
	tel := telemetry.NewRegistry()
	p := New(Config{
		Workers:      2,
		QueueDepth:   len(sess.frames) + 1,
		OutputDepth:  1,
		StallTimeout: 500 * time.Millisecond,
		Telemetry:    tel,
	})
	stalled, err := p.AddStream("stalled", sess.newRx(t))
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := p.AddStream("healthy", sess.newRx(t))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(healthy)

	for _, f := range sess.frames {
		if err := stalled.Submit(context.Background(), f); err != nil {
			break // recycled mid-loop: expected
		}
		if err := healthy.Submit(context.Background(), f); err != nil {
			t.Fatalf("healthy Submit: %v", err)
		}
	}
	healthy.CloseInput()

	// Wait for the watchdog to fire WITHOUT draining the stalled
	// stream's output — draining would un-wedge the lane. Only then
	// observe that Blocks closes on its own.
	deadline := time.Now().Add(10 * time.Second)
	for !stalled.recycling.Load() {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never recycled the stalled stream")
		}
		time.Sleep(5 * time.Millisecond)
	}
	watchdog(t, 5*time.Second, "Blocks close after recycle", func() {
		<-collect(stalled)
	})
	if n := tel.Snapshot().Counters["pipeline.streams_recycled"]; n != 1 {
		t.Errorf("pipeline.streams_recycled = %d, want 1", n)
	}
	// CloseInput runs just after the cancellation; allow it a moment.
	deadline = time.Now().Add(2 * time.Second)
	for !errors.Is(stalled.Submit(context.Background(), sess.frames[0]), ErrClosed) {
		if time.Now().After(deadline) {
			t.Error("Submit on recycled stream never returned ErrClosed")
			break
		}
		time.Sleep(time.Millisecond)
	}

	// The sibling lane must be untouched by the recycle.
	rx := sess.newRx(t)
	want := serialDecode(rx, sess.frames)
	watchdog(t, 30*time.Second, "healthy stream completion", func() {
		if blocks := <-got; !reflect.DeepEqual(blocks, want) {
			t.Errorf("healthy stream decoded %d blocks, serial %d, or contents differ", len(blocks), len(want))
		}
	})
	watchdog(t, 5*time.Second, "Close after recycle", func() {
		if err := p.Close(context.Background()); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
}

// TestRecycledStreamIdReusableAtNextGeneration: after the watchdog
// recycles a stream, its id must be re-registrable, the replacement
// must carry the next recycle generation (so per-stream fault seeds
// derived from it cannot replay the original stream's random phase),
// and the replacement must decode byte-identically to the serial
// reference.
func TestRecycledStreamIdReusableAtNextGeneration(t *testing.T) {
	sess := newSession(t, csk.CSK8, 2000, 3, 4)
	tel := telemetry.NewRegistry()
	p := New(Config{
		Workers:      2,
		QueueDepth:   len(sess.frames) + 1,
		OutputDepth:  1,
		StallTimeout: 500 * time.Millisecond,
		Telemetry:    tel,
	})
	first, err := p.AddStream("led0", sess.newRx(t))
	if err != nil {
		t.Fatal(err)
	}
	if first.Generation() != 0 {
		t.Fatalf("fresh stream generation = %d, want 0", first.Generation())
	}
	if _, err := p.AddStream("led0", sess.newRx(t)); err == nil {
		t.Fatal("duplicate id accepted while the stream is live")
	}
	// Wedge the stream: submit everything, never drain Blocks.
	for _, f := range sess.frames {
		if err := first.Submit(context.Background(), f); err != nil {
			break // recycled mid-loop: expected
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for !first.recycling.Load() {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never recycled the wedged stream")
		}
		time.Sleep(5 * time.Millisecond)
	}
	watchdog(t, 5*time.Second, "Blocks close after recycle", func() {
		<-collect(first)
	})

	// The id is free again; the replacement rides generation 1.
	var second *Stream
	deadline = time.Now().Add(2 * time.Second)
	for {
		second, err = p.AddStream("led0", sess.newRx(t))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recycled id never became re-registrable: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	if second.Generation() != 1 {
		t.Fatalf("replacement generation = %d, want 1", second.Generation())
	}
	if first.Generation() != 0 {
		t.Fatalf("recycle mutated the old stream's generation to %d", first.Generation())
	}
	got := collect(second)
	for _, f := range sess.frames {
		if err := second.Submit(context.Background(), f); err != nil {
			t.Fatalf("Submit on replacement stream: %v", err)
		}
	}
	second.CloseInput()
	want := serialDecode(sess.newRx(t), sess.frames)
	watchdog(t, 30*time.Second, "replacement stream completion", func() {
		if blocks := <-got; !reflect.DeepEqual(blocks, want) {
			t.Errorf("replacement decode diverged from serial (%d vs %d blocks)", len(blocks), len(want))
		}
	})
	watchdog(t, 5*time.Second, "Close", func() {
		if err := p.Close(context.Background()); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
}

// TestWatchdogLeavesIdleAndHealthyStreamsAlone: an armed watchdog must
// not recycle a stream that is merely idle (no input) or one that is
// decoding normally.
func TestWatchdogLeavesIdleAndHealthyStreamsAlone(t *testing.T) {
	sess := newSession(t, csk.CSK8, 2000, 4, 1)
	tel := telemetry.NewRegistry()
	p := New(Config{Workers: 2, StallTimeout: 400 * time.Millisecond, Telemetry: tel})
	s, err := p.AddStream("a", sess.newRx(t))
	if err != nil {
		t.Fatal(err)
	}
	// Idle far longer than the stall timeout.
	time.Sleep(1200 * time.Millisecond)

	got := collect(s)
	for _, f := range sess.frames {
		if err := s.Submit(context.Background(), f); err != nil {
			t.Fatalf("Submit on idle-then-active stream: %v", err)
		}
	}
	s.CloseInput()
	rx := sess.newRx(t)
	want := serialDecode(rx, sess.frames)
	watchdog(t, 30*time.Second, "idle-then-active stream completion", func() {
		if blocks := <-got; !reflect.DeepEqual(blocks, want) {
			t.Errorf("decode diverged from serial (%d vs %d blocks)", len(blocks), len(want))
		}
	})
	if n := tel.Snapshot().Counters["pipeline.streams_recycled"]; n != 0 {
		t.Errorf("watchdog recycled a healthy stream (%d recycles)", n)
	}
	watchdog(t, 5*time.Second, "Close", func() {
		if err := p.Close(context.Background()); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
}
