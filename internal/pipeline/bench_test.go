package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"colorbars/internal/csk"
	"colorbars/internal/modem"
)

// pipelineRun pushes b.N frames (cycling over the captured sequence)
// through a pipeline with the given worker count, draining blocks
// concurrently, and waits for a full graceful shutdown — so the
// measured time covers analysis, reorder and decode of every frame.
func pipelineRun(b *testing.B, sess *captureSession, rx *modem.Receiver, workers int) {
	b.Helper()
	p := New(Config{Workers: workers, QueueDepth: 32})
	s, err := p.AddStream("bench", rx)
	if err != nil {
		b.Fatal(err)
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range s.Blocks() {
		}
	}()
	for i := 0; i < b.N; i++ {
		if err := s.Submit(context.Background(), sess.frames[i%len(sess.frames)]); err != nil {
			b.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		b.Fatal(err)
	}
	<-drained
}

// BenchmarkPipelineThroughput measures decoded frames/sec on the
// ISSUE workload — CSK-32 at 4 kHz — for the serial baseline and the
// pipeline at 1, 2 and 4 workers. On multi-core hardware the Analyze
// stage (the bulk of per-frame cost) scales near-linearly with
// workers; TestPipelineSpeedup asserts the ≥2× criterion where the
// host has the cores to show it.
func BenchmarkPipelineThroughput(b *testing.B) {
	sess := newSession(b, csk.CSK32, 4000, 1, 2)
	b.Run("Serial", func(b *testing.B) {
		rx := sess.newRx(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rx.ProcessFrame(sess.frames[i%len(sess.frames)])
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/sec")
	})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("Workers%d", workers), func(b *testing.B) {
			rx := sess.newRx(b)
			b.ResetTimer()
			pipelineRun(b, sess, rx, workers)
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/sec")
		})
	}
}

// TestPipelineSpeedup asserts the acceptance criterion — ≥2×
// frames/sec over serial with 4 workers on CSK-32 / 4 kHz — on
// machines with enough cores for the comparison to mean anything.
// Hosts with fewer than 4 CPUs (small CI containers) skip: without
// parallel hardware the ratio measures scheduler overhead, not the
// pipeline.
func TestPipelineSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-based")
	}
	if n := runtime.NumCPU(); n < 4 {
		t.Skipf("need ≥4 CPUs for a meaningful 4-worker speedup, have %d", n)
	}
	sess := newSession(t, csk.CSK32, 4000, 1, 2)

	serial := testing.Benchmark(func(b *testing.B) {
		rx := sess.newRx(b)
		for i := 0; i < b.N; i++ {
			rx.ProcessFrame(sess.frames[i%len(sess.frames)])
		}
	})
	parallel := testing.Benchmark(func(b *testing.B) {
		pipelineRun(b, sess, sess.newRx(b), 4)
	})

	speedup := float64(serial.NsPerOp()) / float64(parallel.NsPerOp())
	t.Logf("serial %v ns/frame, 4 workers %v ns/frame: %.2fx", serial.NsPerOp(), parallel.NsPerOp(), speedup)
	if speedup < 2 {
		t.Errorf("4-worker pipeline speedup %.2fx, want ≥2x", speedup)
	}
}
