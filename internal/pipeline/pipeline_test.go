package pipeline

import (
	"context"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"colorbars/internal/camera"
	"colorbars/internal/cie"
	"colorbars/internal/coding"
	"colorbars/internal/csk"
	"colorbars/internal/modem"
	"colorbars/internal/telemetry"
)

// captureSession builds one stream's worth of test material: captured
// frames plus a factory for identically-configured receivers, so the
// same frame sequence can be decoded serially and through the
// pipeline.
type captureSession struct {
	frames []*camera.Frame
	newRx  func(tb testing.TB) *modem.Receiver
}

func newSession(tb testing.TB, order csk.Order, rate float64, seed int64, seconds float64) *captureSession {
	tb.Helper()
	prof := camera.Nexus5()
	params := coding.Params{
		SymbolRate:   rate,
		FrameRate:    prof.FrameRate,
		LossRatio:    prof.LossRatio(),
		Order:        order,
		DataFraction: 0.8,
	}
	code, err := params.LinkCodeErasure()
	if err != nil {
		tb.Fatal(err)
	}
	tx, err := modem.NewTransmitter(modem.TxConfig{
		Order: order, SymbolRate: rate, WhiteFraction: 0.2, Power: 1,
		Triangle: cie.SRGBTriangle, CalibrationEvery: 3, Code: code,
	})
	if err != nil {
		tb.Fatal(err)
	}
	msg := make([]byte, code.K())
	for i := range msg {
		msg[i] = byte(int(seed) + i*5)
	}
	w, err := tx.BuildWaveformRepeating(msg, seconds)
	if err != nil {
		tb.Fatal(err)
	}
	frames := camera.New(prof, seed).CaptureVideo(w, 0, int(seconds*prof.FrameRate))
	if len(frames) == 0 {
		tb.Fatal("no frames captured")
	}
	return &captureSession{
		frames: frames,
		newRx: func(tb testing.TB) *modem.Receiver {
			tb.Helper()
			rx, err := modem.NewReceiver(modem.RxConfig{
				Order: order, SymbolRate: rate, WhiteFraction: 0.2, Code: code,
			})
			if err != nil {
				tb.Fatal(err)
			}
			return rx
		},
	}
}

// serialDecode is the reference path: ProcessFrame per frame plus the
// final Flush, all on one goroutine.
func serialDecode(rx *modem.Receiver, frames []*camera.Frame) []modem.Block {
	var blocks []modem.Block
	for _, f := range frames {
		blocks = append(blocks, rx.ProcessFrame(f)...)
	}
	return append(blocks, rx.Flush()...)
}

// collect drains a stream's Blocks() on a fresh goroutine and
// delivers the full slice once the channel closes.
func collect(s *Stream) <-chan []modem.Block {
	ch := make(chan []modem.Block, 1)
	go func() {
		var blocks []modem.Block
		for b := range s.Blocks() {
			blocks = append(blocks, b)
		}
		ch <- blocks
	}()
	return ch
}

// watchdog fails the test if fn does not finish within the deadline —
// the pipeline's liveness guarantees are part of its contract and a
// hang must fail fast, not wait out the 10-minute package timeout.
func watchdog(t *testing.T, d time.Duration, what string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		fn()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("watchdog: %s did not finish within %v", what, d)
	}
}

// TestPipelineMatchesSerial is the tentpole invariant: for the same
// frame sequence, the concurrent pipeline must produce byte-identical
// Block output to the serial receiver, at every worker count.
func TestPipelineMatchesSerial(t *testing.T) {
	sess := newSession(t, csk.CSK8, 2000, 1, 2)
	want := serialDecode(sess.newRx(t), sess.frames)
	if len(want) == 0 {
		t.Fatal("serial path decoded no blocks; test would be vacuous")
	}

	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			p := New(Config{Workers: workers, QueueDepth: 4})
			defer p.Abort()
			s, err := p.AddStream("led0", sess.newRx(t))
			if err != nil {
				t.Fatal(err)
			}
			got := collect(s)
			for _, f := range sess.frames {
				if err := s.Submit(context.Background(), f); err != nil {
					t.Fatal(err)
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := p.Close(ctx); err != nil {
				t.Fatal(err)
			}
			blocks := <-got
			if !reflect.DeepEqual(blocks, want) {
				t.Errorf("pipeline output differs from serial: got %d blocks, want %d", len(blocks), len(want))
				for i := 0; i < len(blocks) && i < len(want); i++ {
					if !reflect.DeepEqual(blocks[i], want[i]) {
						t.Errorf("first divergence at block %d:\n got %+v\nwant %+v", i, blocks[i], want[i])
						break
					}
				}
			}
		})
	}
}

// TestMultiStreamIsolation runs several streams with different
// capture noise and payloads through one shared pool, under -race in
// CI: every stream's output must match its own serial decode, with no
// cross-stream interference.
func TestMultiStreamIsolation(t *testing.T) {
	const streams = 3
	sessions := make([]*captureSession, streams)
	wants := make([][]modem.Block, streams)
	for i := range sessions {
		sessions[i] = newSession(t, csk.CSK8, 2000, int64(i+1), 1)
		wants[i] = serialDecode(sessions[i].newRx(t), sessions[i].frames)
		if len(wants[i]) == 0 {
			t.Fatalf("stream %d: serial path decoded no blocks", i)
		}
	}

	p := New(Config{Workers: 4, QueueDepth: 4})
	defer p.Abort()
	outs := make([]<-chan []modem.Block, streams)
	lanes := make([]*Stream, streams)
	for i := range sessions {
		s, err := p.AddStream(fmt.Sprintf("led%d", i), sessions[i].newRx(t))
		if err != nil {
			t.Fatal(err)
		}
		lanes[i] = s
		outs[i] = collect(s)
	}
	// Interleave submissions across streams from one producer per
	// stream, concurrently.
	errs := make(chan error, streams)
	for i := range sessions {
		go func(i int) {
			for _, f := range sessions[i].frames {
				if err := lanes[i].Submit(context.Background(), f); err != nil {
					errs <- fmt.Errorf("stream %d: %w", i, err)
					return
				}
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < streams; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if got := <-outs[i]; !reflect.DeepEqual(got, wants[i]) {
			t.Errorf("stream %d output differs from serial (%d vs %d blocks)", i, len(got), len(wants[i]))
		}
	}
}

// TestCloseMidStreamDeliversPrefix closes the pipeline while frames
// are still queued behind a slow worker: Close must not deadlock
// (1s-order watchdog) and every block handed to the consumer before
// or during shutdown must be a prefix of the serial output — nothing
// already acknowledged may be lost or reordered.
func TestCloseMidStreamDeliversPrefix(t *testing.T) {
	sess := newSession(t, csk.CSK8, 2000, 1, 1)

	gate := make(chan struct{})
	var gated atomic.Bool
	cfg := Config{Workers: 2, QueueDepth: 4}
	cfg.analyzeHook = func(r *modem.Receiver, f *camera.Frame) *modem.Analysis {
		if gated.CompareAndSwap(false, true) {
			// The first frame stalls until the gate opens; later frames
			// pass freely and pile up behind it in the reorder buffer.
			<-gate
		}
		return r.Analyze(f)
	}
	p := New(cfg)
	defer p.Abort()
	s, err := p.AddStream("led0", sess.newRx(t))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(s)
	n := cap(s.in) + 1
	if n > len(sess.frames) {
		n = len(sess.frames)
	}
	for _, f := range sess.frames[:n] {
		if err := s.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	close(gate) // release mid-shutdown
	watchdog(t, 5*time.Second, "graceful Close with queued frames", func() {
		ctx, cancel := context.WithTimeout(context.Background(), 4*time.Second)
		defer cancel()
		if err := p.Close(ctx); err != nil {
			t.Error(err)
		}
	})
	blocks := <-got
	// Graceful shutdown decodes every admitted frame, so the output
	// must match a serial run over exactly those frames.
	want := serialDecode(sess.newRx(t), sess.frames[:n])
	if !reflect.DeepEqual(blocks, want) {
		t.Errorf("shutdown output differs from serial over the %d admitted frames (%d vs %d blocks)",
			n, len(blocks), len(want))
	}
}

// TestAbortMidStreamNoDeadlock tears the pipeline down while a worker
// is wedged: once the worker's current frame finishes, Abort must
// return within the watchdog and close the output channel without the
// queued frames ever decoding. (Abort deliberately waits out the
// in-flight Analyze — see TestAbortWaitsForInflightAnalyze — so the
// gate opens after Abort starts.)
func TestAbortMidStreamNoDeadlock(t *testing.T) {
	sess := newSession(t, csk.CSK8, 2000, 1, 1)

	gate := make(chan struct{})
	cfg := Config{Workers: 1, QueueDepth: 2}
	cfg.analyzeHook = func(r *modem.Receiver, f *camera.Frame) *modem.Analysis {
		select {
		case <-gate: // held shut until Abort is underway
		case <-time.After(10 * time.Second):
		}
		return r.Analyze(f)
	}
	p := New(cfg)
	s, err := p.AddStream("led0", sess.newRx(t))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(s)
	for i := 0; i < 3 && i < len(sess.frames); i++ {
		if err := s.Submit(context.Background(), sess.frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	aborted := make(chan struct{})
	go func() {
		p.Abort()
		close(aborted)
	}()
	close(gate) // release the wedged worker; Abort can now join the pool
	watchdog(t, time.Second, "Abort with a wedged worker", func() { <-aborted })
	watchdog(t, time.Second, "Blocks() close after Abort", func() { <-got })
	if err := s.Submit(context.Background(), sess.frames[0]); err != ErrClosed {
		t.Errorf("Submit after Abort = %v, want ErrClosed", err)
	}
}

// TestCloseTimeoutAborts: a consumer that never drains Blocks() would
// stall graceful shutdown forever; Close must honor its context,
// abort hard, and return the context error instead of hanging.
func TestCloseTimeoutAborts(t *testing.T) {
	sess := newSession(t, csk.CSK8, 2000, 1, 1)
	p := New(Config{Workers: 2, QueueDepth: 2, OutputDepth: 1})
	s, err := p.AddStream("led0", sess.newRx(t))
	if err != nil {
		t.Fatal(err)
	}
	// No consumer on s.Blocks(): the decode lane jams once the output
	// buffer fills.
	for _, f := range sess.frames {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		err := s.Submit(ctx, f)
		cancel()
		if err != nil {
			break // backpressure reached the producer, as expected
		}
	}
	watchdog(t, 5*time.Second, "Close against an undrained consumer", func() {
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel()
		if err := p.Close(ctx); err != context.DeadlineExceeded {
			t.Errorf("Close = %v, want context.DeadlineExceeded", err)
		}
	})
}

// TestDropOldestSheds verifies the overload policy: with the pool
// wedged and the queue full, Submit keeps admitting frames by
// discarding the oldest, never blocks, and accounts every drop.
func TestDropOldestSheds(t *testing.T) {
	sess := newSession(t, csk.CSK8, 2000, 1, 1)
	if len(sess.frames) < 8 {
		t.Fatalf("need ≥8 frames, have %d", len(sess.frames))
	}
	reg := telemetry.NewRegistry()
	gate := make(chan struct{})
	cfg := Config{Workers: 1, QueueDepth: 2, Overload: DropOldest, Telemetry: reg}
	cfg.analyzeHook = func(r *modem.Receiver, f *camera.Frame) *modem.Analysis {
		<-gate
		return r.Analyze(f)
	}
	p := New(cfg)
	defer p.Abort()
	s, err := p.AddStream("led0", sess.newRx(t))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(s)
	watchdog(t, 5*time.Second, "DropOldest submissions against a wedged pool", func() {
		for _, f := range sess.frames {
			if err := s.Submit(context.Background(), f); err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
		}
	})
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatal(err)
	}
	<-got

	snap := reg.Snapshot()
	dropped := snap.Counters["pipeline.frames_dropped"]
	if dropped == 0 {
		t.Error("no frames dropped despite wedged pool and full queue")
	}
	if in := snap.Counters["pipeline.frames_in"]; in != int64(len(sess.frames)) {
		t.Errorf("frames_in = %d, want %d", in, len(sess.frames))
	}
	if s.Submitted() != uint64(len(sess.frames)) {
		t.Errorf("Submitted() = %d, want %d", s.Submitted(), len(sess.frames))
	}
}

// TestStreamLifecycleErrors covers the small contracts: duplicate
// stream ids, Submit/AddStream after close, idempotent CloseInput,
// and Drain.
func TestStreamLifecycleErrors(t *testing.T) {
	sess := newSession(t, csk.CSK8, 2000, 1, 1)
	p := New(Config{Workers: 1})
	s, err := p.AddStream("led0", sess.newRx(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddStream("led0", sess.newRx(t)); err == nil {
		t.Error("duplicate AddStream succeeded")
	}
	if err := s.Submit(context.Background(), sess.frames[0]); err != nil {
		t.Fatal(err)
	}
	s.CloseInput()
	s.CloseInput() // must not panic
	if err := s.Submit(context.Background(), sess.frames[0]); err != ErrClosed {
		t.Errorf("Submit after CloseInput = %v, want ErrClosed", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddStream("led1", sess.newRx(t)); err != ErrClosed {
		t.Errorf("AddStream after Close = %v, want ErrClosed", err)
	}
}

// TestPipelineTelemetry checks the pipeline's own metrics: frame
// counts, block counts, latency histogram population, and that
// per-stream queue-depth gauges exist.
func TestPipelineTelemetry(t *testing.T) {
	sess := newSession(t, csk.CSK8, 2000, 1, 1)
	reg := telemetry.NewRegistry()
	p := New(Config{Workers: 2, Telemetry: reg})
	defer p.Abort()
	s, err := p.AddStream("led0", sess.newRx(t))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(s)
	for _, f := range sess.frames {
		if err := s.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatal(err)
	}
	blocks := <-got

	snap := reg.Snapshot()
	if in := snap.Counters["pipeline.frames_in"]; in != int64(len(sess.frames)) {
		t.Errorf("frames_in = %d, want %d", in, len(sess.frames))
	}
	if out := snap.Counters["pipeline.blocks_out"]; out != int64(len(blocks)) {
		t.Errorf("blocks_out = %d, want %d", out, len(blocks))
	}
	lat, ok := snap.Histograms["pipeline.frame_latency"]
	if !ok || lat.Count != int64(len(sess.frames)) {
		t.Errorf("frame_latency observed %d frames, want %d", lat.Count, len(sess.frames))
	}
	if _, ok := snap.Gauges["pipeline.queue_depth.led0"]; !ok {
		t.Error("missing pipeline.queue_depth.led0 gauge")
	}
	if busy := snap.Gauges["pipeline.workers_busy"]; busy != 0 {
		t.Errorf("workers_busy = %v after shutdown, want 0", busy)
	}
	// The receiver's own rx.analyze span must have fired once per frame.
	rxSnap := s.rx.Snapshot()
	if h, ok := rxSnap.Histograms["rx.analyze"]; !ok || h.Count != int64(len(sess.frames)) {
		t.Errorf("rx.analyze observed %d times, want %d", h.Count, len(sess.frames))
	}
}
