package pipeline

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"colorbars/internal/camera"
	"colorbars/internal/csk"
	"colorbars/internal/modem"
	"colorbars/internal/telemetry"
)

// TestAbortWaitsForInflightAnalyze pins the Abort teardown contract:
// Abort must not return while a pool worker is still inside an Analyze
// call. The old Abort skipped the worker join entirely (no close(jobs),
// no workerWG.Wait), so it returned immediately here and this test
// failed; the fixed Abort blocks until the wedged worker finishes its
// frame and exits.
func TestAbortWaitsForInflightAnalyze(t *testing.T) {
	sess := newSession(t, csk.CSK8, 2000, 1, 1)

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	cfg := Config{Workers: 1, QueueDepth: 2}
	cfg.analyzeHook = func(r *modem.Receiver, f *camera.Frame) *modem.Analysis {
		entered <- struct{}{}
		<-release
		return r.Analyze(f)
	}
	p := New(cfg)
	s, err := p.AddStream("led0", sess.newRx(t))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(s)
	if err := s.Submit(context.Background(), sess.frames[0]); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the frame")
	}

	aborted := make(chan struct{})
	go func() {
		p.Abort()
		close(aborted)
	}()
	select {
	case <-aborted:
		t.Fatal("Abort returned while a worker was still inside Analyze")
	case <-time.After(100 * time.Millisecond):
		// Abort is correctly blocked on the worker join.
	}
	close(release)
	select {
	case <-aborted:
	case <-time.After(5 * time.Second):
		t.Fatal("Abort never returned after the worker was released")
	}
	<-got
}

// TestAbortIdempotentAndAfterClose: the worker join added to Abort
// must survive repeated Aborts and an Abort after a graceful Close
// (both share jobsOnce, so the job channel closes exactly once).
func TestAbortIdempotentAndAfterClose(t *testing.T) {
	sess := newSession(t, csk.CSK8, 2000, 1, 1)
	p := New(Config{Workers: 2})
	s, err := p.AddStream("led0", sess.newRx(t))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(s)
	for _, f := range sess.frames {
		if err := s.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatal(err)
	}
	<-got
	watchdog(t, time.Second, "Abort after Close", func() { p.Abort() })
	watchdog(t, time.Second, "second Abort", func() { p.Abort() })
}

// TestDrainRecycleCloseOrdering is the regression test for the
// Drain→recycle→Close sequence: a consumer Drains a stream the
// watchdog has already recycled (both paths run CloseInput, which the
// closed guard must make idempotent), the id is re-registered at the
// next generation, and a graceful Close — which iterates CloseInput
// over every live stream once more — must neither panic on the
// doubly-closed input channel nor deadlock on the recycled lane.
func TestDrainRecycleCloseOrdering(t *testing.T) {
	sess := newSession(t, csk.CSK8, 2000, 3, 4)
	tel := telemetry.NewRegistry()
	p := New(Config{
		Workers:      2,
		QueueDepth:   len(sess.frames) + 1,
		OutputDepth:  1,
		StallTimeout: 500 * time.Millisecond,
		Telemetry:    tel,
	})
	wedged, err := p.AddStream("led0", sess.newRx(t))
	if err != nil {
		t.Fatal(err)
	}
	// Wedge the lane: submit everything, never drain Blocks().
	for _, f := range sess.frames {
		if err := wedged.Submit(context.Background(), f); err != nil {
			break // recycled mid-loop: expected
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for !wedged.recycling.Load() {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never recycled the wedged stream")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Drain the already-recycled stream: CloseInput must hit the closed
	// guard (not close(in) twice), and Drain must return once the
	// recycled lane's output channel closes.
	watchdog(t, 5*time.Second, "Drain on a recycled stream", func() {
		if err := wedged.Drain(context.Background()); err != nil {
			t.Errorf("Drain on recycled stream: %v", err)
		}
	})
	if gen := wedged.Generation(); gen != 0 {
		t.Errorf("recycled stream generation = %d, want 0", gen)
	}

	// The id is free again at generation 1; the replacement decodes
	// normally and a full graceful Close completes.
	var fresh *Stream
	deadline = time.Now().Add(2 * time.Second)
	for {
		fresh, err = p.AddStream("led0", sess.newRx(t))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recycled id never became re-registrable: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	if fresh.Generation() != 1 {
		t.Fatalf("replacement generation = %d, want 1", fresh.Generation())
	}
	got := collect(fresh)
	for _, f := range sess.frames {
		if err := fresh.Submit(context.Background(), f); err != nil {
			t.Fatalf("Submit on replacement: %v", err)
		}
	}
	// Drain→Close on the healthy replacement: the second CloseInput
	// (Close's sweep) must again be a no-op, not a panic.
	watchdog(t, 30*time.Second, "Drain then Close", func() {
		if err := fresh.Drain(context.Background()); err != nil {
			t.Errorf("Drain: %v", err)
		}
		if err := p.Close(context.Background()); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	<-got
}

// TestTrySubmitShedsWhenFull: TrySubmit must admit frames while the
// queue has room, return ErrQueueFull (without blocking) once it
// fills behind a wedged pool, and the admitted prefix must decode
// byte-identically to a serial run over exactly those frames.
func TestTrySubmitShedsWhenFull(t *testing.T) {
	sess := newSession(t, csk.CSK8, 2000, 1, 2)
	gate := make(chan struct{})
	cfg := Config{Workers: 1, QueueDepth: 2}
	cfg.analyzeHook = func(r *modem.Receiver, f *camera.Frame) *modem.Analysis {
		<-gate
		return r.Analyze(f)
	}
	p := New(cfg)
	defer p.Abort()
	s, err := p.AddStream("led0", sess.newRx(t))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(s)

	var admitted []*camera.Frame
	sheds := 0
	watchdog(t, 5*time.Second, "TrySubmit against a wedged pool", func() {
		for _, f := range sess.frames {
			switch err := s.TrySubmit(f); {
			case err == nil:
				admitted = append(admitted, f)
			case errors.Is(err, ErrQueueFull):
				sheds++
			default:
				t.Errorf("TrySubmit: %v", err)
				return
			}
		}
	})
	if sheds == 0 {
		t.Fatal("queue never filled: TrySubmit shed nothing")
	}
	if len(admitted) == 0 {
		t.Fatal("TrySubmit admitted nothing")
	}
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatal(err)
	}
	blocks := <-got
	want := serialDecode(sess.newRx(t), admitted)
	if !reflect.DeepEqual(blocks, want) {
		t.Errorf("admitted-prefix decode diverged from serial (%d vs %d blocks)", len(blocks), len(want))
	}
	if s.Submitted() != uint64(len(admitted)) {
		t.Errorf("Submitted() = %d, want %d admitted", s.Submitted(), len(admitted))
	}
	if err := s.TrySubmit(sess.frames[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("TrySubmit after Close = %v, want ErrClosed", err)
	}
}

// TestOnDecodedHookOrdering: the OnDecoded hook must fire exactly once
// per admitted frame, in strict capture order, with a non-negative
// latency, and never for the final deframer flush.
func TestOnDecodedHookOrdering(t *testing.T) {
	sess := newSession(t, csk.CSK8, 2000, 1, 2)
	tel := telemetry.NewRegistry()
	p := New(Config{Workers: 4, Telemetry: tel})
	defer p.Abort()

	type decodeEvent struct {
		seq uint64
		lat int64
	}
	var events []decodeEvent
	s, err := p.AddStreamHooked("led0", sess.newRx(t), StreamHooks{
		OnDecoded: func(seq uint64, latencyNs int64) {
			events = append(events, decodeEvent{seq, latencyNs})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(s)
	for _, f := range sess.frames {
		if err := s.Submit(context.Background(), f); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatal(err)
	}
	<-got

	// Close returns only after the decode goroutine exits, so reading
	// events here is race-free.
	if len(events) != len(sess.frames) {
		t.Fatalf("OnDecoded fired %d times for %d frames", len(events), len(sess.frames))
	}
	for i, e := range events {
		if e.seq != uint64(i) {
			t.Fatalf("event %d carries seq %d; hook order must match capture order", i, e.seq)
		}
		if e.lat <= 0 {
			t.Errorf("event %d latency %d ns, want > 0 on a real registry clock", i, e.lat)
		}
	}
}
