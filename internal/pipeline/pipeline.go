// Package pipeline runs the receiver's per-frame front end on a
// shared worker pool while keeping the sequential tail — CIELab
// classification against calibration references, deframing, RS
// decoding — in strict capture order, so decoded Block output is
// byte-identical to calling Receiver.ProcessFrame on the same frames.
//
// The split follows the data dependencies of the decode path. Strip
// extraction, band segmentation, grid-phase fitting and the
// OFF-threshold fit read only the frame and the immutable link
// configuration (modem.Receiver.Analyze); classification depends on
// color references that calibration packets in *earlier* frames
// update, and deframing/decoding consume symbols in order
// (modem.Receiver.ProcessAnalysis). So the pipeline fans Analyze out
// to N workers and funnels the results through a per-stream reorder
// buffer into a single decoder goroutine.
//
// One Pipeline serves any number of independent LED streams: each
// stream owns one Receiver and one ordered decode lane, all lanes
// share the worker pool.
//
//	Submit ─▶ [in queue] ─feeder─▶ [jobs] ─▶ workers ×N ─▶ [done]
//	                                                         │
//	                  decoder: reorder by seq ─▶ ProcessAnalysis ─▶ [out]
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"colorbars/internal/camera"
	"colorbars/internal/linkstats"
	"colorbars/internal/modem"
	"colorbars/internal/telemetry"
)

// OverloadPolicy selects what Submit does when a stream's input queue
// is full.
type OverloadPolicy int

const (
	// Backpressure blocks Submit until queue space frees up (or its
	// context is done). Decoded output is identical to the serial path.
	Backpressure OverloadPolicy = iota
	// DropOldest discards the oldest queued frame to admit the new one,
	// bounding latency for live capture at the cost of frame loss. The
	// pipeline.frames_dropped counter records every discard. Dropped
	// frames look like inter-frame gaps to the deframer (the same
	// erasure mechanism rolling-shutter gaps use), so decoding degrades
	// instead of derailing.
	DropOldest OverloadPolicy = iota
)

// Config parameterizes New. The zero value is usable: GOMAXPROCS
// workers, depth-8 queues, backpressure, no telemetry.
type Config struct {
	// Workers is the size of the shared Analyze pool. Zero or negative
	// means GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds each stream's input queue (frames admitted but
	// not yet analyzed). Zero or negative means 8.
	QueueDepth int
	// OutputDepth bounds each stream's decoded-block channel. Zero or
	// negative means 16. The consumer must drain Blocks(); a full
	// output channel stalls that stream's decode lane (and, through
	// the queues, Submit).
	OutputDepth int
	// Overload selects the full-queue policy for Submit.
	Overload OverloadPolicy
	// StallTimeout arms the stream watchdog: a stream with work
	// pending whose decode lane makes no progress for this long is
	// recycled — its input closes, its lane goroutines exit, and its
	// Blocks() channel closes — so one wedged consumer (or a stuck
	// upstream) cannot deadlock Close or pin pool resources forever.
	// Each recycle increments pipeline.streams_recycled. Zero disables
	// the watchdog.
	StallTimeout time.Duration
	// Telemetry receives pipeline metrics: pipeline.frames_in,
	// pipeline.frames_dropped, pipeline.blocks_out counters; a
	// pipeline.workers_busy gauge; pipeline.queue_depth.<stream>
	// gauges; and a pipeline.frame_latency histogram of
	// submit-to-decode seconds. Nil disables all of it.
	Telemetry *telemetry.Registry

	// analyzeHook, when set, replaces Receiver.Analyze in the workers.
	// Tests use it to stall the pool and provoke overload or shutdown
	// races; nil means the real thing.
	analyzeHook func(r *modem.Receiver, f *camera.Frame) *modem.Analysis
}

// ErrClosed is returned by Submit after CloseInput or Close.
var ErrClosed = errors.New("pipeline: stream closed")

// ErrQueueFull is returned by TrySubmit when the stream's input queue
// has no space. The frame was not admitted; the caller decides whether
// to retry, drop, or shed.
var ErrQueueFull = errors.New("pipeline: stream queue full")

// job is one frame traveling through the worker pool.
type job struct {
	s       *Stream
	f       *camera.Frame
	seq     uint64
	tSubmit int64 // registry-clock ns when admitted, for frame_latency
}

// result is an analyzed frame waiting for its turn in the decode lane.
type result struct {
	a       *modem.Analysis
	seq     uint64
	tSubmit int64
}

// Pipeline is a shared worker pool plus per-stream ordered decode
// lanes. Create with New, add streams with AddStream, then Submit
// frames and drain Blocks(). Close (or Abort) before discarding.
type Pipeline struct {
	cfg    Config
	tel    *telemetry.Registry
	jobs   chan job
	ctx    context.Context
	cancel context.CancelFunc

	workerWG   sync.WaitGroup // worker goroutines
	streamWG   sync.WaitGroup // feeder + decoder goroutines
	watchdogWG sync.WaitGroup // watchdog goroutine (if armed)
	jobsOnce   sync.Once      // guards close(jobs) across Close/Abort
	busy       *telemetry.Gauge
	framesIn   *telemetry.Counter
	dropped    *telemetry.Counter
	blocksOut  *telemetry.Counter
	recycled   *telemetry.Counter
	latency    *telemetry.Histogram

	mu      sync.Mutex
	streams map[string]*Stream
	// gens counts recycles per stream id: a recycled id may be
	// re-registered, and its replacement starts at the next generation.
	gens   map[string]uint64
	closed bool
}

// Stream is one LED stream's lane through the pipeline: a bounded
// input queue, a share of the worker pool, and an ordered decode lane
// feeding Blocks().
type Stream struct {
	p    *Pipeline
	id   string
	rx   *modem.Receiver
	in   chan job         // Submit → feeder
	done chan result      // workers → decoder (unordered)
	out  chan modem.Block // decoder → consumer

	// ctx is the stream's own lifetime, a child of the pipeline's: the
	// watchdog cancels it to recycle one wedged stream without
	// touching its siblings.
	ctx    context.Context
	cancel context.CancelFunc

	// gen is this stream's recycle generation under its id: 0 for a
	// first registration, n after the id was recycled n times.
	gen uint64

	// hooks holds the stream's optional callbacks (AddStreamHooked).
	hooks StreamHooks

	depth *telemetry.Gauge

	// submit-side state, guarded by mu: seq would race between
	// concurrent Submits, closed gates Submit vs CloseInput.
	mu        sync.Mutex
	closed    bool
	submitted uint64 // frames admitted to in

	// feeder-side state: frames handed to the pool so far, and the
	// total the decoder must wait for. fedAll closes once finalSeq is
	// valid (after CloseInput drained the queue). fed is atomic only
	// so the watchdog may read it.
	fed      atomic.Uint64
	finalSeq uint64
	fedAll   chan struct{}

	// Watchdog progress signals. decoded counts frames fully through
	// ProcessAnalysis *and* their block emits (incremented after, so a
	// lane blocked mid-emit still reads as having work pending);
	// emitted counts delivered blocks; flushing marks the final
	// deframer flush; finished marks the decode goroutine's exit.
	decoded   atomic.Uint64
	emitted   atomic.Uint64
	flushing  atomic.Bool
	finished  atomic.Bool
	recycling atomic.Bool

	// Watchdog-goroutine-private stall accounting.
	lastProgress uint64
	stalledFor   time.Duration
}

// New builds a pipeline and starts its worker pool.
func New(cfg Config) *Pipeline {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.OutputDepth <= 0 {
		cfg.OutputDepth = 16
	}
	if cfg.analyzeHook == nil {
		cfg.analyzeHook = func(r *modem.Receiver, f *camera.Frame) *modem.Analysis {
			return r.Analyze(f)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pipeline{
		cfg:       cfg,
		tel:       cfg.Telemetry,
		jobs:      make(chan job),
		ctx:       ctx,
		cancel:    cancel,
		streams:   map[string]*Stream{},
		gens:      map[string]uint64{},
		busy:      cfg.Telemetry.Gauge("pipeline.workers_busy"),
		framesIn:  cfg.Telemetry.Counter("pipeline.frames_in"),
		dropped:   cfg.Telemetry.Counter("pipeline.frames_dropped"),
		blocksOut: cfg.Telemetry.Counter("pipeline.blocks_out"),
		recycled:  cfg.Telemetry.Counter("pipeline.streams_recycled"),
		latency:   cfg.Telemetry.Histogram("pipeline.frame_latency", nil),
	}
	p.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go p.worker()
	}
	if cfg.StallTimeout > 0 {
		p.watchdogWG.Add(1)
		go p.watchdog(cfg.StallTimeout)
	}
	return p
}

// watchdog periodically samples every stream's progress signals and
// recycles lanes that sit on pending work without advancing for a
// full StallTimeout. It exits when the pipeline context is cancelled
// (Close's final step, or Abort).
func (p *Pipeline) watchdog(timeout time.Duration) {
	defer p.watchdogWG.Done()
	interval := timeout / 4
	if interval <= 0 {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-p.ctx.Done():
			return
		case <-tick.C:
			p.mu.Lock()
			streams := make([]*Stream, 0, len(p.streams))
			for _, s := range p.streams {
				streams = append(streams, s)
			}
			p.mu.Unlock()
			for _, s := range streams {
				s.checkStall(interval, timeout)
			}
		}
	}
}

// checkStall is one watchdog sample of this stream: progress is the
// decoded+emitted sum, work is pending whenever fed or queued frames
// outnumber decoded ones (or the final flush is underway). Only the
// watchdog goroutine touches the stall accumulator.
func (s *Stream) checkStall(elapsed, timeout time.Duration) {
	if s.finished.Load() || s.recycling.Load() {
		return
	}
	decoded := s.decoded.Load()
	progress := decoded + s.emitted.Load()
	hasWork := s.fed.Load()+uint64(len(s.in)) > decoded || s.flushing.Load()
	if progress != s.lastProgress || !hasWork {
		s.lastProgress = progress
		s.stalledFor = 0
		return
	}
	s.stalledFor += elapsed
	if s.stalledFor >= timeout {
		s.recycle()
	}
}

// recycle tears down one wedged stream: input closes (Submit returns
// ErrClosed), the lane goroutines exit at their next channel
// operation, undelivered output is dropped, and Blocks() closes. The
// rest of the pipeline is untouched, and the stream's id is released
// at the next recycle generation so a replacement can re-register.
func (s *Stream) recycle() {
	if !s.recycling.CompareAndSwap(false, true) {
		return
	}
	s.p.recycled.Inc()
	// Cancel before CloseInput: a Submit blocked in backpressure holds
	// s.mu until the cancellation releases it, and CloseInput needs
	// that mutex.
	s.cancel()
	s.CloseInput()
	s.p.mu.Lock()
	if s.p.streams[s.id] == s {
		delete(s.p.streams, s.id)
	}
	s.p.gens[s.id] = s.gen + 1
	s.p.mu.Unlock()
}

// Workers reports the pool size.
func (p *Pipeline) Workers() int { return p.cfg.Workers }

// StreamHooks carries a stream's optional callbacks. The zero value
// disables them all.
type StreamHooks struct {
	// OnDecoded fires on the stream's decode goroutine after frame seq
	// has fully decoded — its blocks delivered to Blocks() — with the
	// submit-to-decode latency in registry-clock nanoseconds. It runs
	// inline in the decode lane, so a slow callback stalls that
	// stream's decoding exactly like a slow Blocks() consumer; keep it
	// to a channel send or a counter bump. It is never called for the
	// final deframer flush (which has no originating frame).
	OnDecoded func(seq uint64, latencyNs int64)
}

// AddStream registers a stream decoding through rx and returns its
// lane. The id names the stream in telemetry
// (pipeline.queue_depth.<id>) and must be unique among live streams;
// an id whose stream the watchdog recycled may be re-registered, and
// the replacement starts at the next recycle generation (see
// Generation). The receiver must not be used outside the pipeline
// afterwards.
func (p *Pipeline) AddStream(id string, rx *modem.Receiver) (*Stream, error) {
	return p.AddStreamHooked(id, rx, StreamHooks{})
}

// AddStreamHooked is AddStream with per-stream callbacks attached
// (the ingest service uses OnDecoded for per-frame acknowledgements
// and latency accounting).
func (p *Pipeline) AddStreamHooked(id string, rx *modem.Receiver, hooks StreamHooks) (*Stream, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	if _, dup := p.streams[id]; dup {
		return nil, fmt.Errorf("pipeline: duplicate stream %q", id)
	}
	s := &Stream{
		p:      p,
		id:     id,
		rx:     rx,
		gen:    p.gens[id],
		hooks:  hooks,
		in:     make(chan job, p.cfg.QueueDepth),
		done:   make(chan result, p.cfg.QueueDepth+p.cfg.Workers),
		out:    make(chan modem.Block, p.cfg.OutputDepth),
		depth:  p.tel.Gauge("pipeline.queue_depth." + id),
		fedAll: make(chan struct{}),
	}
	s.ctx, s.cancel = context.WithCancel(p.ctx)
	p.streams[id] = s
	p.streamWG.Add(2)
	go s.feed()
	go s.decode()
	return s, nil
}

// worker pulls analysis jobs from every stream and runs the
// goroutine-safe front end.
func (p *Pipeline) worker() {
	defer p.workerWG.Done()
	for {
		select {
		case <-p.ctx.Done():
			return
		case j, ok := <-p.jobs:
			if !ok {
				return
			}
			p.busy.Add(1)
			a := p.cfg.analyzeHook(j.s.rx, j.f)
			p.busy.Add(-1)
			select {
			case j.s.done <- result{a: a, seq: j.seq, tSubmit: j.tSubmit}:
			case <-p.ctx.Done():
				return
			}
		}
	}
}

// Submit hands one captured frame to the stream. Frames must be
// submitted in capture order (concurrent Submits on one stream would
// make "order" meaningless, but Submit itself is safe to call from
// multiple goroutines). Under Backpressure a full queue blocks until
// space frees, ctx is done, or the stream closes; under DropOldest it
// discards the oldest queued frame and never blocks on queue space.
func (s *Stream) Submit(ctx context.Context, f *camera.Frame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	j := job{s: s, f: f, tSubmit: s.p.tel.Now()}
	for {
		select {
		case s.in <- j:
			s.submitted++
			s.p.framesIn.Inc()
			s.depth.Set(float64(len(s.in)))
			return nil
		default:
		}
		if s.p.cfg.Overload == DropOldest {
			select {
			case old := <-s.in:
				_ = old
				s.p.dropped.Inc()
				continue // retry; another Submit cannot race us (mu held)
			default:
				continue // feeder drained the queue between selects
			}
		}
		// Backpressure: wait for space without spinning.
		select {
		case s.in <- j:
			s.submitted++
			s.p.framesIn.Inc()
			s.depth.Set(float64(len(s.in)))
			return nil
		case <-ctx.Done():
			return ctx.Err()
		case <-s.ctx.Done():
			return ErrClosed
		}
	}
}

// TrySubmit is Submit without blocking: a full input queue returns
// ErrQueueFull immediately, regardless of the pipeline's overload
// policy, and the frame is not admitted. Admission-control layers
// (the ingest service's load shedding) use it to turn queue pressure
// into an explicit signal instead of latency.
func (s *Stream) TrySubmit(f *camera.Frame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	select {
	case s.in <- job{s: s, f: f, tSubmit: s.p.tel.Now()}:
		s.submitted++
		s.p.framesIn.Inc()
		s.depth.Set(float64(len(s.in)))
		return nil
	default:
		return ErrQueueFull
	}
}

// QueueDepth reports how many admitted frames are waiting in the
// stream's input queue right now (capacity is Config.QueueDepth).
// Racy by nature — a snapshot for shed decisions and telemetry.
func (s *Stream) QueueDepth() int { return len(s.in) }

// feed moves frames from the stream queue into the shared pool,
// stamping each with its decode sequence number. Sequence numbers are
// assigned here — after any DropOldest discards — so the decoder's
// expected sequence is always contiguous.
func (s *Stream) feed() {
	defer s.p.streamWG.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j, ok := <-s.in:
			if !ok {
				// CloseInput ran and the queue is drained: everything
				// admitted has been fed. Publish the total and let the
				// decoder finish.
				s.finalSeq = s.fed.Load()
				close(s.fedAll)
				return
			}
			s.depth.Set(float64(len(s.in)))
			j.seq = s.fed.Load()
			s.fed.Add(1)
			select {
			case s.p.jobs <- j:
			case <-s.ctx.Done():
				return
			}
		}
	}
}

// decode reorders analyzed frames into capture order and runs the
// sequential tail. It owns the stream's Receiver and the out channel.
func (s *Stream) decode() {
	defer s.p.streamWG.Done()
	defer s.finished.Store(true)
	defer close(s.out)
	pending := map[uint64]result{}
	var next uint64
	var total uint64
	haveTotal := false
	for {
		if haveTotal && next >= total {
			// Every fed frame decoded: flush deframer remnants.
			s.flushing.Store(true)
			for _, b := range s.rx.Flush() {
				if !s.emit(b) {
					return
				}
			}
			return
		}
		select {
		case <-s.ctx.Done():
			return
		case <-s.fedAll:
			total, haveTotal = s.finalSeq, true
			s.fedAll = nil // a nil channel never fires again
		case r := <-s.done:
			pending[r.seq] = r
			for {
				r, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				for _, b := range s.rx.ProcessAnalysis(r.a) {
					if !s.emit(b) {
						return
					}
				}
				// Count the frame only once its blocks are delivered,
				// so a lane blocked mid-emit still shows pending work
				// to the watchdog.
				s.decoded.Add(1)
				lat := s.p.tel.Now() - r.tSubmit
				s.p.latency.Observe(float64(lat) / 1e9)
				if s.hooks.OnDecoded != nil {
					s.hooks.OnDecoded(r.seq, lat)
				}
			}
		}
	}
}

// emit delivers one decoded block, reporting false on Abort or
// recycle.
func (s *Stream) emit(b modem.Block) bool {
	select {
	case s.out <- b:
		s.p.blocksOut.Inc()
		s.emitted.Add(1)
		return true
	case <-s.ctx.Done():
		return false
	}
}

// Blocks returns the stream's decoded output in strict capture order.
// The channel closes after CloseInput once every admitted frame has
// been decoded and the deframer flushed — or immediately on Abort.
// Consumers must drain it; an undrained stream eventually stalls.
func (s *Stream) Blocks() <-chan modem.Block { return s.out }

// Stats exposes the stream receiver's counters (safe once the stream
// is drained).
func (s *Stream) Stats() modem.RxStats { return s.rx.Stats() }

// Telemetry returns the stream receiver's metric registry (for
// attaching trace sinks or reading per-stage histograms).
func (s *Stream) Telemetry() *telemetry.Registry { return s.rx.Telemetry() }

// Health returns the stream's current link-quality snapshot. It is
// safe to call while the stream is decoding — the collector is
// internally synchronized — and returns a no-traffic snapshot when
// the stream's receiver has no linkstats collector attached.
func (s *Stream) Health() linkstats.LinkHealth { return s.rx.LinkStats().Health() }

// Generation reports the stream's recycle generation: 0 for a first
// registration of its id, n when the id has been recycled n times
// before this stream registered. Per-stream seeds for stochastic
// layers wrapped around a stream (fault injection above all) must
// incorporate the generation — a replacement stream that reuses the
// original seed replays the original random phase from zero, which is
// exactly the nondeterminism recycling must not introduce.
func (s *Stream) Generation() uint64 { return s.gen }

// Submitted reports how many frames Submit has admitted (including
// ones DropOldest later discarded).
func (s *Stream) Submitted() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.submitted
}

// CloseInput marks the end of the stream's input. Subsequent Submits
// return ErrClosed; frames already admitted still decode, then
// Blocks() closes. Safe to call more than once.
func (s *Stream) CloseInput() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.in)
}

// Drain closes the stream's input and waits for Blocks() to close,
// discarding any undelivered blocks. It unsticks consumers that want
// completion without caring about remaining output.
func (s *Stream) Drain(ctx context.Context) error {
	s.CloseInput()
	// An already-cancelled context means the caller wants out now, not
	// after a flush: the select below would otherwise pick arbitrarily
	// between a ready block and the done context.
	if err := ctx.Err(); err != nil {
		return err
	}
	for {
		select {
		case _, ok := <-s.out:
			if !ok {
				return nil
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Close shuts the pipeline down gracefully: every stream's input
// closes, in-flight frames finish decoding, Blocks() channels close,
// then the worker pool exits. Blocks() consumers must keep draining
// during Close or it cannot complete; ctx bounds the wait, and a
// context error aborts the pipeline hard (dropping in-flight frames)
// before returning.
func (p *Pipeline) Close(ctx context.Context) error {
	// An already-cancelled context skips the graceful flush entirely:
	// abort hard and return promptly, exactly as if the deadline had
	// expired mid-flush.
	if err := ctx.Err(); err != nil {
		p.Abort()
		return err
	}
	p.mu.Lock()
	p.closed = true
	streams := make([]*Stream, 0, len(p.streams))
	for _, s := range p.streams {
		streams = append(streams, s)
	}
	p.mu.Unlock()
	for _, s := range streams {
		s.CloseInput()
	}
	done := make(chan struct{})
	go func() {
		p.streamWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		p.Abort()
		<-done
		return ctx.Err()
	}
	p.cancel()
	p.watchdogWG.Wait()
	p.jobsOnce.Do(func() { close(p.jobs) })
	p.workerWG.Wait()
	return nil
}

// Abort tears the pipeline down immediately: feeders and decode lanes
// exit at the next channel operation, in-flight frames are dropped,
// Blocks() channels close without flushing. Workers already inside an
// Analyze call are not interrupted — Abort waits for each to finish
// its current frame and exit, so no pool goroutine outlives the call
// (mirroring Close's teardown tail: cancel, close the job channel,
// join the worker pool). Safe to call more than once, and after
// Close.
func (p *Pipeline) Abort() {
	p.mu.Lock()
	p.closed = true
	for _, s := range p.streams {
		s.CloseInput()
	}
	p.mu.Unlock()
	p.cancel()
	p.streamWG.Wait()
	p.watchdogWG.Wait()
	p.jobsOnce.Do(func() { close(p.jobs) })
	p.workerWG.Wait()
}
