GO ?= go

.PHONY: ci vet build test race race-pipeline fuzz-smoke bench

# ci is the full gate: static checks, build, the test suite, a short
# fuzz smoke over every fuzz target, the race-enabled pass over the
# concurrent pipeline (the packages where races can actually live),
# and a single-iteration pass over the ProcessFrame benchmarks (so the
# telemetry-overhead path compiles and runs). Budget: ~3 minutes on a
# laptop. The full-suite race run stays available as `make race` but
# is too slow for the default gate.
ci: vet build test fuzz-smoke race-pipeline bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-pipeline runs the concurrency-heavy packages under the race
# detector: the worker-pool pipeline and the modem whose Analyze path
# the workers share. The root-package facade tests also pass -race but
# their multi-second end-to-end captures blow the ci budget; run
# `make race` for the exhaustive version.
race-pipeline:
	$(GO) test -race -count=1 ./internal/pipeline/ ./internal/modem/

# fuzz-smoke gives each fuzz target a few seconds of coverage-guided
# input generation on top of the checked-in seed corpus. Panics found
# here reproduce with `go test -run=Fuzz<Name>/<file>`.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzDeframe$$' -fuzztime=5s ./internal/packet/
	$(GO) test -run='^$$' -fuzz='^FuzzRSDecode$$' -fuzztime=5s ./internal/rs/
	$(GO) test -run='^$$' -fuzz='^FuzzStripSegment$$' -fuzztime=5s ./internal/modem/

bench:
	$(GO) test -run=- -bench=BenchmarkProcessFrame -benchtime=1x ./...
