GO ?= go

.PHONY: ci vet build test race bench

# ci is the full gate: static checks, build, the race-enabled test
# suite, and a single-iteration pass over the ProcessFrame benchmarks
# (so the telemetry-overhead path compiles and runs).
ci: vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=- -bench=BenchmarkProcessFrame -benchtime=1x ./...
