GO ?= go

.PHONY: ci vet build test race race-pipeline fault-soak adapt-soak ingest-soak fuzz-smoke bench bench-json bench-gate golden cover

# ci is the full gate: static checks, build, the test suite, a short
# fuzz smoke over every fuzz target, the race-enabled pass over the
# concurrent pipeline (the packages where races can actually live),
# the deterministic chaos soak, the adaptive-link chaos soak (the
# closed-loop controller must beat every surviving fixed operating
# point and regain the top rung on budget), a single-iteration pass
# over the ProcessFrame benchmarks (so the telemetry-overhead path
# compiles and runs), and the benchmark trajectory gate against the
# committed bench/BENCH_*.json baseline. Budget: ~10 minutes on a
# laptop (adapt-soak simulates 32 multi-second sessions and dominates).
# The full-suite race run stays available as `make race` but is too
# slow for the default gate.
ci: vet build test fuzz-smoke race-pipeline fault-soak adapt-soak ingest-soak bench bench-gate

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# test shuffles both test and subtest execution order so hidden
# inter-test state dependencies surface in CI instead of in a
# developer's unlucky local run. Reproduce a shuffle failure with
# `go test -shuffle=<seed printed in the failing log>`.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

# race-pipeline runs the concurrency-heavy packages under the race
# detector: the worker-pool pipeline and the modem whose Analyze path
# the workers share. The root-package facade tests also pass -race but
# their multi-second end-to-end captures blow the ci budget; run
# `make race` for the exhaustive version.
race-pipeline:
	$(GO) test -race -count=1 ./internal/pipeline/ ./internal/modem/

# fault-soak runs the deterministic chaos soak: first the
# concurrency-focused subset under the race detector (a sustained
# blackout through the resync/recalibration machinery, and the
# pipeline-vs-serial decode-digest equivalence with goroutine-leak and
# heap checks), then the per-fault-class LinkHealth matrix without
# -race (every class must dip the health score and recover within the
# 60-frame budget; on failure it prints the per-class health table).
# The full per-class recovery matrix also runs (without -race) as part
# of the ordinary test suite.
fault-soak:
	$(GO) test -race -count=1 -run 'TestSoakResyncPath|TestSoakPipelineMatchesSerial|TestSoakNoFalseAlarms' ./internal/fault/...
	$(GO) test -count=1 -run TestSoakHealthPerClass ./internal/fault/soak/

# adapt-soak runs the adaptive-link chaos gate (internal/fault/soak
# adapt_test.go): for every fault class in the chaos table, the
# closed-loop link-adaptation session must deliver at least 2x the
# goodput of the best fixed configuration that survived the burst,
# regain the top ladder rung within the 90-frame recovery budget, and
# reproduce byte-identically under a fixed seed. The long test ride is
# real simulation time (each class runs one adaptive plus three
# fixed-rung 14-second sessions).
adapt-soak:
	$(GO) test -count=1 -run TestAdaptSoak -v ./internal/fault/soak/

# ingest-soak runs the multi-tenant ingest service's concurrency gate
# under the race detector: the reconnecting-fleet soak (every session's
# wire block stream must digest-equal a serial re-decode of exactly the
# admitted frames, second-round sessions must ride the calibration
# cache, and Close must leave no goroutines behind), the shedding
# paths, and the loadgen fleet harness with full verification.
ingest-soak:
	$(GO) test -race -count=1 -run 'TestIngestSoak|TestServer|TestLoadgen' ./internal/ingest/...

# fuzz-smoke gives each fuzz target a few seconds of coverage-guided
# input generation on top of the checked-in seed corpus. Panics found
# here reproduce with `go test -run=Fuzz<Name>/<file>`.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzDeframe$$' -fuzztime=5s ./internal/packet/
	$(GO) test -run='^$$' -fuzz='^FuzzRSDecode$$' -fuzztime=5s ./internal/rs/
	$(GO) test -run='^$$' -fuzz='^FuzzStripSegment$$' -fuzztime=5s ./internal/modem/
	$(GO) test -run='^$$' -fuzz='^FuzzFrontEndDifferential$$' -fuzztime=5s ./internal/modem/
	$(GO) test -run='^$$' -fuzz='^FuzzCalibrationTLV$$' -fuzztime=5s ./internal/packet/
	$(GO) test -run='^$$' -fuzz='^FuzzCalSnapshot$$' -fuzztime=5s ./internal/packet/

# golden regenerates the committed golden-frame digests under
# internal/modem/testdata/golden/ from the scenario definitions in
# golden_test.go. Run after an intentional decode-behavior change,
# then review the digest diff like any other code change — an
# unexpected digest flip is a decode regression, not noise.
golden:
	$(GO) test -run='^TestGoldenCorpus$$' -count=1 ./internal/modem/ -args -update

# cover enforces a statement-coverage floor on the packages the
# decode hot path lives in: the modem, the colorspace kernels, the
# constellation designs, and the online equalizer the classify path
# now runs through. The floor is deliberately below the current
# numbers (modem 94.6%, colorspace 97.7% at introduction) — it exists
# to catch a future fast-path branch (new kernel, new LUT, new
# correction stage) landing without tests, not to chase a percentage.
cover:
	@$(GO) test -count=1 -coverprofile=/tmp/colorbars-cover.out ./internal/modem/ ./internal/colorspace/ ./internal/equalize/ ./internal/csk/
	@$(GO) tool cover -func=/tmp/colorbars-cover.out | tail -1
	@total=$$($(GO) tool cover -func=/tmp/colorbars-cover.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	floor=90; \
	ok=$$(awk -v t=$$total -v f=$$floor 'BEGIN{print (t>=f)?1:0}'); \
	if [ "$$ok" != 1 ]; then \
		echo "coverage $$total% below floor $$floor% (modem+colorspace)"; exit 1; \
	fi

bench:
	$(GO) test -run=- -bench=BenchmarkProcessFrame -benchtime=1x ./...

# bench-json measures the receiver decode trajectory (ns/frame, B/op,
# allocs/op, ground-truth SER per operating point, the adaptive link's
# goodput under chaos, the ingest service's p99 submit-to-decode
# latency at saturation, and the dense ladder's goodput under chaos
# with its never-gated equalizer-confidence context cell) and writes
# the dated point
# bench/BENCH_<today>.json. Commit the file to extend the trajectory;
# bench-gate diffs against the newest committed point.
bench-json:
	$(GO) run ./cmd/colorbars-bench -exp perf -duration 1 -adapt -ingest -dense -bench-out bench

# bench-gate fails (exit 1) when any trajectory metric regresses more
# than 10% against the newest bench/BENCH_*.json — including the
# goodput_chaos and goodput_dense capacity cells, whose bad direction
# is down. Sanity-
# check the gate itself with:  go run ./cmd/colorbars-bench -exp perf \
#   -duration 1 -adapt -bench-gate bench -handicap 2   (must fail).
bench-gate:
	$(GO) run ./cmd/colorbars-bench -exp perf -duration 1 -adapt -ingest -dense -bench-gate bench
