GO ?= go

.PHONY: ci vet build test race race-pipeline fault-soak fuzz-smoke bench

# ci is the full gate: static checks, build, the test suite, a short
# fuzz smoke over every fuzz target, the race-enabled pass over the
# concurrent pipeline (the packages where races can actually live),
# the deterministic chaos soak, and a single-iteration pass over the
# ProcessFrame benchmarks (so the telemetry-overhead path compiles and
# runs). Budget: ~4 minutes on a laptop. The full-suite race run stays
# available as `make race` but is too slow for the default gate.
ci: vet build test fuzz-smoke race-pipeline fault-soak bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-pipeline runs the concurrency-heavy packages under the race
# detector: the worker-pool pipeline and the modem whose Analyze path
# the workers share. The root-package facade tests also pass -race but
# their multi-second end-to-end captures blow the ci budget; run
# `make race` for the exhaustive version.
race-pipeline:
	$(GO) test -race -count=1 ./internal/pipeline/ ./internal/modem/

# fault-soak runs the deterministic chaos soak under the race
# detector: a sustained blackout through the resync/recalibration
# machinery, and the pipeline-vs-serial decode-digest equivalence with
# goroutine-leak and heap checks. The full per-class recovery matrix
# runs (without -race) as part of the ordinary test suite; this target
# is the concurrency-focused subset, sized to stay around a minute.
fault-soak:
	$(GO) test -race -count=1 -run 'TestSoakResyncPath|TestSoakPipelineMatchesSerial|TestSoakNoFalseAlarms' ./internal/fault/...

# fuzz-smoke gives each fuzz target a few seconds of coverage-guided
# input generation on top of the checked-in seed corpus. Panics found
# here reproduce with `go test -run=Fuzz<Name>/<file>`.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzDeframe$$' -fuzztime=5s ./internal/packet/
	$(GO) test -run='^$$' -fuzz='^FuzzRSDecode$$' -fuzztime=5s ./internal/rs/
	$(GO) test -run='^$$' -fuzz='^FuzzStripSegment$$' -fuzztime=5s ./internal/modem/

bench:
	$(GO) test -run=- -bench=BenchmarkProcessFrame -benchtime=1x ./...
