// Package colorbars is a Go implementation of ColorBars, the
// LED-to-camera visible light communication system of Hu, Pathak,
// Feng, Fu and Mohapatra (CoNEXT 2015). A tri-LED modulates data as
// colors (Color Shift Keying), and a rolling-shutter camera receives
// them as bands in its frames; the system keeps the LED's illumination
// white, recovers symbols lost in the camera's inter-frame gap with
// Reed-Solomon coding, and calibrates each receiver's color response
// with periodic calibration packets.
//
// The package ties together the building blocks under internal/ —
// color-space math, CSK constellations, Reed-Solomon codes, the LED
// waveform model, the rolling-shutter camera simulator, framing, and
// the modem pipelines — behind a small API:
//
//	cfg := colorbars.DefaultConfig()
//	tx, _ := colorbars.NewTransmitter(cfg)
//	wave, _ := tx.Broadcast([]byte("hello"), 2.0)
//
//	rx, _ := colorbars.NewReceiver(cfg)
//	cam := colorbars.NewCamera(colorbars.Nexus5(), 1)
//	for _, frame := range cam.CaptureVideo(wave, 0, 60) {
//	    for _, msg := range rx.ProcessFrame(frame) {
//	        fmt.Printf("%s\n", msg.Data)
//	    }
//	}
//
// On top of the paper's modem, Broadcast adds a small application
// protocol: messages are split into blocks carrying sequence headers,
// so a receiver reassembles the message even when individual packets
// are lost and recovered from later repetitions of the broadcast loop.
package colorbars

import (
	"encoding/binary"
	"fmt"

	"colorbars/internal/camera"
	"colorbars/internal/cie"
	"colorbars/internal/coding"
	"colorbars/internal/colorspace"
	"colorbars/internal/csk"
	"colorbars/internal/flicker"
	"colorbars/internal/led"
	"colorbars/internal/linkstats"
	"colorbars/internal/modem"
	"colorbars/internal/packet"
	"colorbars/internal/rs"
	"colorbars/internal/telemetry"
)

// Re-exported building blocks. These aliases make the internal types
// part of the public API without duplicating them.
type (
	// Order is a CSK constellation order (4, 8, 16 or 32 from the
	// paper, plus the dense 64 and 256 extensions).
	Order = csk.Order
	// Profile describes a receiving camera device.
	Profile = camera.Profile
	// Camera is a simulated rolling-shutter camera.
	Camera = camera.Camera
	// Frame is one captured image.
	Frame = camera.Frame
	// Waveform is the tri-LED's emitted radiance over time.
	Waveform = led.Waveform
	// LinkHealth is a point-in-time link-quality snapshot (scalar
	// score plus degradation reason — see internal/linkstats).
	LinkHealth = linkstats.LinkHealth
	// LinkReport is a full link-quality report: LinkHealth plus the
	// classification-margin and parity-load histograms behind it.
	LinkReport = linkstats.Report
)

// Supported CSK constellation orders. CSK64 and CSK256 are the dense
// extensions beyond the paper's alphabet: their points are packed
// tightly enough that a practical link needs the receiver's online
// channel equalizer tracking drift between calibrations (see
// internal/equalize and the linkadapt dense ladder).
const (
	CSK4   = csk.CSK4
	CSK8   = csk.CSK8
	CSK16  = csk.CSK16
	CSK32  = csk.CSK32
	CSK64  = csk.CSK64
	CSK256 = csk.CSK256
)

// Device profiles from the paper's evaluation.
func Nexus5() Profile      { return camera.Nexus5() }
func IPhone5S() Profile    { return camera.IPhone5S() }
func IdealCamera() Profile { return camera.Ideal() }

// NewCamera returns a simulated camera with a deterministic noise
// seed.
func NewCamera(p Profile, seed int64) *Camera { return camera.New(p, seed) }

// MaxSymbolRate is the transmitter hardware's symbol-rate limit in Hz.
const MaxSymbolRate = led.MaxSymbolRate

// Config describes one ColorBars link. Both ends must use the same
// values (in a deployment they are part of the published sign format).
type Config struct {
	// Order is the CSK constellation order.
	Order Order
	// SymbolRate is the LED symbol frequency in Hz (≤ MaxSymbolRate).
	SymbolRate float64
	// WhiteFraction is the fraction of payload slots spent on white
	// illumination symbols. Zero selects the minimum flicker-free
	// fraction for the symbol rate from the Bloch's-law observer
	// model (paper §4, Fig 3b).
	WhiteFraction float64
	// TargetLossRatio is the worst inter-frame loss ratio among the
	// receivers the link must support; the Reed-Solomon code is sized
	// for it (paper §8: goodput is bounded by the lossiest supported
	// phone). Zero selects 0.38, which covers the iPhone 5S.
	TargetLossRatio float64
	// FrameRate is the supported receivers' frame rate. Zero selects
	// 30 fps.
	FrameRate float64
	// CalibrationEvery inserts a calibration packet before every
	// CalibrationEvery data packets. Zero selects 6, about 5 per
	// second at one packet per frame (the paper's rate).
	CalibrationEvery int
	// Power scales the LED radiance; 1 is the paper's low-lumen
	// prototype.
	Power float64
	// PaperSizing selects the paper's §5 Reed-Solomon sizing, which
	// provisions parity to recover one gap's loss as unknown-position
	// errors (rate ≈ 1−2l). The default uses erasure-aware sizing
	// (rate ≈ 1−l): the receiver learns the loss positions from the
	// packet header, so half the parity suffices.
	PaperSizing bool
	// TrackAnnouncedRung records modulation-ladder rungs announced in
	// transmitter calibration metadata (Transmitter.AnnounceRung) into
	// the receiver's link report and the /debug/link endpoint — the rx
	// tool's -adapt flag. Fixed-rate links without announcements are
	// unaffected.
	TrackAnnouncedRung bool
}

// DefaultConfig returns the configuration of the paper's headline
// result: 16-CSK at 4 kHz.
func DefaultConfig() Config {
	return Config{
		Order:      CSK16,
		SymbolRate: 4000,
	}
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.WhiteFraction == 0 {
		c.WhiteFraction = autoWhiteFraction(c.Order, c.SymbolRate)
	}
	if c.TargetLossRatio == 0 {
		c.TargetLossRatio = 0.38
	}
	if c.FrameRate == 0 {
		c.FrameRate = 30
	}
	if c.CalibrationEvery == 0 {
		c.CalibrationEvery = 6
	}
	if c.Power == 0 {
		c.Power = 1
	}
	return c
}

// autoWhiteFraction picks the flicker-free white fraction for the
// symbol rate, with a floor that keeps the illumination robust to
// non-uniform data.
func autoWhiteFraction(order Order, rate float64) float64 {
	cons, err := csk.New(order, cie.SRGBTriangle)
	if err != nil {
		return 0.2
	}
	drives := make([]colorspace.RGB, cons.Size())
	for i := range drives {
		drives[i] = cons.Drive(i)
	}
	frac := flicker.MinWhiteFraction(flicker.DefaultObserver(), drives, rate, 3000, 1)
	if frac < 0.1 {
		frac = 0.1
	}
	if frac > 0.9 {
		frac = 0.9
	}
	return frac
}

// code builds the link's RS code.
func (c Config) code() (*rs.Code, error) {
	params := coding.Params{
		SymbolRate:   c.SymbolRate,
		FrameRate:    c.FrameRate,
		LossRatio:    c.TargetLossRatio,
		Order:        c.Order,
		DataFraction: 1 - c.WhiteFraction,
	}
	if c.PaperSizing {
		return params.LinkCode()
	}
	return params.LinkCodeErasure()
}

// --- application-layer message protocol ---

// blockHeaderLen is the per-block header: sequence (1), total blocks
// (1), message length (2), CRC-16 of the chunk (2). Messages are
// therefore limited to 255 blocks and 64 KiB — ample for signage
// payloads, and small enough to fit the short blocks of
// low-symbol-rate links. The CRC catches the rare Reed-Solomon
// miscorrection that the erasure-split search can let through.
const blockHeaderLen = 6

// crc16 computes the CCITT CRC-16 (poly 0x1021, init 0xFFFF).
func crc16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// Transmitter broadcasts messages as ColorBars waveforms.
type Transmitter struct {
	cfg Config
	tx  *modem.Transmitter
	k   int
}

// NewTransmitter builds a transmitter for the link configuration.
func NewTransmitter(cfg Config) (*Transmitter, error) {
	cfg = cfg.withDefaults()
	code, err := cfg.code()
	if err != nil {
		return nil, err
	}
	if code.K() <= blockHeaderLen {
		return nil, fmt.Errorf("colorbars: link blocks too small (%d bytes) for the message protocol", code.K())
	}
	tx, err := modem.NewTransmitter(modem.TxConfig{
		Order:            cfg.Order,
		SymbolRate:       cfg.SymbolRate,
		WhiteFraction:    cfg.WhiteFraction,
		Power:            cfg.Power,
		Triangle:         cie.SRGBTriangle,
		CalibrationEvery: cfg.CalibrationEvery,
		Code:             code,
		Telemetry:        telemetry.Process().NewChild(),
	})
	if err != nil {
		return nil, err
	}
	return &Transmitter{cfg: cfg, tx: tx, k: code.K()}, nil
}

// Config returns the link configuration (with defaults resolved).
func (t *Transmitter) Config() Config { return t.cfg }

// Telemetry returns the transmitter's metric registry (a child of
// telemetry.Process(), so the tx.* counters also roll up into the
// process-level registry exposed via -telemetry-addr).
func (t *Transmitter) Telemetry() *telemetry.Registry { return t.tx.Telemetry() }

// AnnounceRung embeds modulation-ladder metadata — the link's current
// rung index and adaptation epoch — into every subsequent calibration
// packet (the in-band negotiation channel of DESIGN.md §13). It
// reports whether the metadata-bearing calibration packet still fits
// one frame's visible symbol window under the link's worst supported
// loss ratio; when it does not (dense metadata on a slow rung), no
// metadata is emitted — a region split by the inter-frame gap could
// never decode anyway. A negative rung stops the announcements.
func (t *Transmitter) AnnounceRung(rung, epoch int) bool {
	if rung < 0 {
		t.tx.SetCalMeta(nil)
		return true
	}
	meta := packet.EncodeCalMeta(packet.CalMeta{
		Rung: rung, HasRung: true,
		Epoch: epoch, HasEpoch: true,
	})
	cal, err := t.tx.PacketConfig().BuildCalibrationMeta(t.tx.Constellation().CalibrationOrder(), meta)
	if err != nil {
		return false
	}
	visible := t.cfg.SymbolRate / t.cfg.FrameRate * (1 - t.cfg.TargetLossRatio)
	if float64(len(cal)) > visible-2 {
		return false
	}
	t.tx.SetCalMeta(meta)
	return true
}

// segment splits a message into headered blocks of exactly k bytes.
func (t *Transmitter) segment(msg []byte) ([]byte, error) {
	if len(msg) == 0 {
		return nil, fmt.Errorf("colorbars: empty message")
	}
	chunk := t.k - blockHeaderLen
	total := (len(msg) + chunk - 1) / chunk
	if total > 255 {
		return nil, fmt.Errorf("colorbars: message needs %d blocks, max 255", total)
	}
	if len(msg) > 1<<16-1 {
		return nil, fmt.Errorf("colorbars: message %d bytes exceeds 64 KiB", len(msg))
	}
	out := make([]byte, 0, total*t.k)
	for seq := 0; seq < total; seq++ {
		lo := seq * chunk
		hi := lo + chunk
		if hi > len(msg) {
			hi = len(msg)
		}
		block := make([]byte, chunk)
		copy(block, msg[lo:hi])
		var hdr [blockHeaderLen]byte
		hdr[0] = byte(seq)
		hdr[1] = byte(total)
		binary.BigEndian.PutUint16(hdr[2:4], uint16(len(msg)))
		binary.BigEndian.PutUint16(hdr[4:6], crc16(block))
		out = append(out, hdr[:]...)
		out = append(out, block...)
	}
	return out, nil
}

// Broadcast encodes the message and repeats it (with de-phasing
// padding) until the waveform covers at least the given duration —
// the broadcast-loop operation of a ColorBars sign.
func (t *Transmitter) Broadcast(msg []byte, seconds float64) (*Waveform, error) {
	seg, err := t.segment(msg)
	if err != nil {
		return nil, err
	}
	return t.tx.BuildWaveformRepeating(seg, seconds)
}

// Encode encodes one pass of the message without repetition.
func (t *Transmitter) Encode(msg []byte) (*Waveform, error) {
	seg, err := t.segment(msg)
	if err != nil {
		return nil, err
	}
	return t.tx.BuildWaveform(seg)
}

// Message is a fully reassembled broadcast message.
type Message struct {
	// Data is the message payload.
	Data []byte
	// Blocks is the number of link blocks the message spanned.
	Blocks int
}

// assembler reassembles broadcast messages from decoded link blocks.
// It is the application-protocol half of a receiver, shared by the
// serial Receiver and the concurrent Pipeline streams (each stream
// owns one; it is not goroutine-safe).
type assembler struct {
	blocks map[int][]byte // seq -> chunk
	total  int
	msgLen int
}

func newAssembler() *assembler {
	return &assembler{blocks: map[int][]byte{}}
}

// progress reports how many of the current message's blocks have been
// received.
func (a *assembler) progress() (have, total int) {
	return len(a.blocks), a.total
}

// take integrates one decoded link block into the reassembly state,
// returning a message when it completes.
func (a *assembler) take(blk modem.Block) *Message {
	if !blk.Recovered || len(blk.Data) <= blockHeaderLen {
		return nil
	}
	seq := int(blk.Data[0])
	total := int(blk.Data[1])
	msgLen := int(binary.BigEndian.Uint16(blk.Data[2:4]))
	wantCRC := binary.BigEndian.Uint16(blk.Data[4:6])
	chunk := len(blk.Data) - blockHeaderLen
	if total == 0 || seq >= total || msgLen == 0 || msgLen > total*chunk {
		return nil // corrupt header that slipped past RS (or foreign traffic)
	}
	if crc16(blk.Data[blockHeaderLen:]) != wantCRC {
		return nil // Reed-Solomon miscorrection caught by the CRC
	}
	if total != a.total || msgLen != a.msgLen {
		// New message (or first block): reset reassembly.
		a.blocks = map[int][]byte{}
		a.total = total
		a.msgLen = msgLen
	}
	if _, dup := a.blocks[seq]; !dup {
		a.blocks[seq] = append([]byte(nil), blk.Data[blockHeaderLen:]...)
	}
	if len(a.blocks) < a.total {
		return nil
	}
	out := make([]byte, 0, a.total*chunk)
	for seq := 0; seq < a.total; seq++ {
		out = append(out, a.blocks[seq]...)
	}
	msg := &Message{Data: out[:a.msgLen], Blocks: a.total}
	a.blocks = map[int][]byte{}
	a.total, a.msgLen = 0, 0
	return msg
}

// Receiver decodes camera frames into messages.
type Receiver struct {
	cfg Config
	rx  *modem.Receiver
	ls  *linkstats.Collector
	asm *assembler
}

// NewReceiver builds a receiver for the link configuration.
func NewReceiver(cfg Config) (*Receiver, error) {
	cfg = cfg.withDefaults()
	code, err := cfg.code()
	if err != nil {
		return nil, err
	}
	tel := telemetry.Process().NewChild()
	ls := linkstats.NewCollector(linkstats.Config{
		Points:        int(cfg.Order),
		BitsPerSymbol: cfg.Order.BitsPerSymbol(),
		Telemetry:     tel,
	})
	rx, err := modem.NewReceiver(modem.RxConfig{
		Order:              cfg.Order,
		SymbolRate:         cfg.SymbolRate,
		WhiteFraction:      cfg.WhiteFraction,
		Code:               code,
		Triangle:           cie.SRGBTriangle,
		Telemetry:          tel,
		LinkStats:          ls,
		TrackAnnouncedRung: cfg.TrackAnnouncedRung,
	})
	if err != nil {
		return nil, err
	}
	return &Receiver{cfg: cfg, rx: rx, ls: ls, asm: newAssembler()}, nil
}

// Config returns the link configuration (with defaults resolved).
func (r *Receiver) Config() Config { return r.cfg }

// Stats returns the receiver's low-level counters.
func (r *Receiver) Stats() modem.RxStats { return r.rx.Stats() }

// Telemetry returns the receiver's metric registry (a child of
// telemetry.Process()); attach a trace sink with SetSink or read a
// Snapshot for the per-stage latency histograms and failure counters.
func (r *Receiver) Telemetry() *telemetry.Registry { return r.rx.Telemetry() }

// Calibrated reports whether the receiver has obtained color
// references from a calibration packet.
func (r *Receiver) Calibrated() bool { return r.rx.Calibrated() }

// Health returns the receiver's current link-quality snapshot: a
// scalar score in [0, 1] plus the dominant degradation reason,
// backed by classification margins, block outcomes, and calibration
// age (DESIGN.md §11).
func (r *Receiver) Health() LinkHealth { return r.ls.Health() }

// LinkReport returns the receiver's full link-quality report,
// including the classification-margin histograms; name labels the
// report (e.g. a stream or camera identifier).
func (r *Receiver) LinkReport(name string) LinkReport { return r.ls.Report(name) }

// PublishLink exposes this receiver's live link report at the
// /debug/link endpoint of any -telemetry-addr debug server under the
// given name.
func (r *Receiver) PublishLink(name string) { linkstats.Publish(name, r.ls) }

// Progress returns how many of the current message's blocks have been
// received (0, 0 before the first block arrives).
func (r *Receiver) Progress() (have, total int) {
	return r.asm.progress()
}

// ProcessFrame feeds one captured frame through the pipeline and
// returns any messages completed by it. Frames must arrive in capture
// order.
func (r *Receiver) ProcessFrame(f *Frame) []Message {
	var msgs []Message
	for _, blk := range r.rx.ProcessFrame(f) {
		if m := r.asm.take(blk); m != nil {
			msgs = append(msgs, *m)
		}
	}
	return msgs
}

// Flush drains the pipeline at end of capture.
func (r *Receiver) Flush() []Message {
	var msgs []Message
	for _, blk := range r.rx.Flush() {
		if m := r.asm.take(blk); m != nil {
			msgs = append(msgs, *m)
		}
	}
	return msgs
}
