package colorbars

import (
	"bytes"
	"fmt"
	"testing"
)

func TestSimulateRecoversMessage(t *testing.T) {
	msg := []byte("simulate me end to end")
	res, err := Simulate(DefaultConfig(), Nexus5(), msg, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Received == nil {
		t.Fatalf("not recovered: %+v", res.Stats)
	}
	if !bytes.Equal(res.Received.Data, msg) {
		t.Error("message corrupt")
	}
	if res.RecoveredAt <= 0 || res.RecoveredAt > 3 {
		t.Errorf("RecoveredAt = %v", res.RecoveredAt)
	}
	if res.ProgressHave != res.ProgressTotal {
		t.Errorf("progress %d/%d after completion", res.ProgressHave, res.ProgressTotal)
	}
}

func TestSimulateRejectsBadInputs(t *testing.T) {
	if _, err := Simulate(DefaultConfig(), Nexus5(), []byte("x"), 0, 1); err == nil {
		t.Error("zero duration accepted")
	}
	bad := DefaultConfig()
	bad.SymbolRate = 99999
	if _, err := Simulate(bad, Nexus5(), []byte("x"), 1, 1); err == nil {
		t.Error("bad config accepted")
	}
	if _, err := Simulate(DefaultConfig(), Nexus5(), nil, 1, 1); err == nil {
		t.Error("empty message accepted")
	}
}

func TestSimulateIncompleteWindow(t *testing.T) {
	// A window far too short to finish must report partial progress,
	// not an error.
	msg := bytes.Repeat([]byte("large payload "), 40)
	res, err := Simulate(DefaultConfig(), IPhone5S(), msg, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Received != nil {
		t.Skip("unexpectedly completed; nothing to assert")
	}
	if res.Stats.Frames == 0 {
		t.Error("no frames processed")
	}
}

// Example demonstrates the one-call simulation API.
func ExampleSimulate() {
	res, err := Simulate(DefaultConfig(), Nexus5(), []byte("aisle 7: 20% off"), 3, 42)
	if err != nil || res.Received == nil {
		fmt.Println("not recovered")
		return
	}
	fmt.Printf("%s\n", res.Received.Data)
	// Output: aisle 7: 20% off
}
